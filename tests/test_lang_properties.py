"""Property-based tests for the surface language (lexer/parser/pretty)."""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_process, pretty_process
from repro.lang.lexer import KEYWORDS, tokenize

# ----------------------------------------------------------------------
# lexer properties
# ----------------------------------------------------------------------

name_strategy = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
number_strategy = st.integers(min_value=0, max_value=10**6)


class TestLexerProperties:
    @given(st.lists(name_strategy, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_names_tokenize_individually(self, names):
        source = " ".join(names)
        tokens = [t for t in tokenize(source) if t.kind != "EOF"]
        assert [t.value for t in tokens] == names

    @given(st.lists(number_strategy, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_numbers_round_trip(self, numbers):
        source = " ".join(str(n) for n in numbers)
        tokens = [t for t in tokenize(source) if t.kind == "NUMBER"]
        assert [int(t.value) for t in tokens] == numbers

    @given(st.text(alphabet=" \t\n", max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_whitespace_only_is_empty(self, blanks):
        tokens = tokenize(blanks)
        assert len(tokens) == 1 and tokens[0].kind == "EOF"

    @given(st.text(alphabet="abcxyz0123456789_ <>*^,:;()[]|+-", max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_lexer_never_crashes_on_benign_alphabet(self, source):
        tokens = tokenize(source)
        assert tokens[-1].kind == "EOF"

    @given(st.lists(name_strategy, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_comments_are_invisible(self, names):
        plain = tokenize(" ".join(names))
        commented = tokenize(" ".join(names) + " # trailing comment")
        assert [t.value for t in plain] == [t.value for t in commented]


# ----------------------------------------------------------------------
# pretty/compile round-trip properties on generated programs
# ----------------------------------------------------------------------

# keywords (``all``, ``no``, ``and``, ...) are not legal atom names
atom_strategy = st.from_regex(r"[a-z][a-z]{1,4}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)


@st.composite
def simple_process_source(draw):
    """Generate a small, valid SDL process over harvest-style transactions."""
    name = draw(st.from_regex(r"[A-Z][a-z]{1,5}", fullmatch=True))
    tag_atom = draw(atom_strategy)
    out_atom = draw(atom_strategy)
    threshold = draw(st.integers(0, 99))
    mode = draw(st.sampled_from(["->", "=>"]))
    retract = draw(st.booleans())
    caret = "^" if retract else ""
    return (
        f"process {name}()\n"
        f"behavior\n"
        f"  exists a : <{tag_atom}, a>{caret} : a > {threshold} {mode} ({out_atom}, a)\n"
        f"end\n"
    ), name


class TestRoundTripProperties:
    @given(simple_process_source())
    @settings(max_examples=60, deadline=None)
    def test_compile_pretty_compile_fixpoint(self, source_and_name):
        source, name = source_and_name
        first = compile_process(source)
        printed = pretty_process(first)
        second = compile_process(printed)
        # printing the recompiled definition reaches a fixpoint
        assert pretty_process(second) == printed
        assert second.name == name

    @given(simple_process_source(), st.lists(st.integers(0, 200), max_size=8), st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_preserves_behaviour(self, source_and_name, values, seed):
        from repro.core.values import Atom
        from repro.runtime.engine import Engine

        source, name = source_and_name
        original = compile_process(source)
        clone = compile_process(pretty_process(original))
        # extract the tag atom from the source to build matching input
        tag = source.split("<", 1)[1].split(",")[0]

        def run(defn):
            engine = Engine(definitions=[defn], seed=seed, on_deadlock="return")
            engine.assert_tuples([(Atom(tag), v) for v in values])
            engine.start(defn.name)
            engine.run(max_steps=10_000)
            return engine.dataspace.snapshot()

        assert run(original) == run(clone)
