"""Unit tests for flow-of-control constructs (repro.core.constructs)."""

import pytest

from repro.core.constructs import (
    GuardedSequence,
    Repetition,
    Replication,
    Selection,
    Sequence,
    TransactionStatement,
    as_statement,
    guarded,
    repeat,
    replicate,
    select,
    seq,
)
from repro.core.patterns import P
from repro.core.query import exists
from repro.core.transactions import consensus, delayed, immediate
from repro.errors import TransactionError


class TestCoercions:
    def test_builder_becomes_statement(self):
        stmt = as_statement(immediate())
        assert isinstance(stmt, TransactionStatement)

    def test_transaction_becomes_statement(self):
        stmt = as_statement(immediate().build())
        assert isinstance(stmt, TransactionStatement)

    def test_statement_passthrough(self):
        stmt = TransactionStatement(immediate())
        assert as_statement(stmt) is stmt

    def test_bad_coercion_rejected(self):
        with pytest.raises(TransactionError):
            as_statement("nope")  # type: ignore[arg-type]


class TestSequences:
    def test_seq_builds_sequence(self):
        s = seq(immediate(), immediate())
        assert isinstance(s, Sequence)
        assert len(s.body) == 2

    def test_nested_sequences_allowed(self):
        inner = seq(immediate())
        outer = seq(inner, immediate())
        assert isinstance(outer.body[0], Sequence)


class TestGuardedConstructs:
    def test_guarded_sugar(self):
        branch = guarded(immediate(), immediate(), immediate())
        assert isinstance(branch, GuardedSequence)
        assert len(branch.body) == 2

    def test_selection_requires_branches(self):
        with pytest.raises(TransactionError):
            Selection(())

    def test_repetition_requires_branches(self):
        with pytest.raises(TransactionError):
            Repetition(())

    def test_replication_requires_branches(self):
        with pytest.raises(TransactionError):
            Replication(())

    def test_bare_transaction_promoted_to_branch(self):
        sel = select(immediate(), delayed())
        assert all(isinstance(b, GuardedSequence) for b in sel.branches)
        assert len(sel.branches) == 2

    def test_replication_rejects_consensus_guard(self):
        with pytest.raises(TransactionError):
            replicate(consensus())

    def test_replication_allows_delayed_guard(self):
        rep = replicate(delayed(exists().match(P["x"])))
        assert isinstance(rep, Replication)

    def test_repetition_allows_consensus_guard(self):
        # the Sort pattern: swap | consensus-exit
        rep = repeat(immediate(), consensus())
        assert isinstance(rep, Repetition)


class TestReprs:
    def test_select_repr(self):
        text = repr(select(immediate(), immediate()))
        assert text.startswith("[") and "|" in text

    def test_repeat_repr(self):
        assert repr(repeat(immediate())).startswith("*[")

    def test_replicate_repr(self):
        assert repr(replicate(immediate())).startswith("~[")
