"""Property tests: the fine-grained wakeup filter is a sound refinement.

Two invariants link the content-addressed ``"keys"`` subscription to the
seed's per-arity oracle (:func:`repro.runtime.wakeup.txn_arities`):

* **refinement** — every change the keys subscription wakes on, the arity
  oracle would also have woken on (the new filter only removes wakes);
* **soundness** — whenever a mutation flips a parked query from
  unsatisfiable to satisfiable (or vice versa for negated queries), the
  keys subscription wakes on that mutation (no lost wakeups).
"""

from hypothesis import given, settings, strategies as st

from repro.core.dataspace import Dataspace
from repro.core.patterns import ANY, P, Pattern
from repro.core.query import exists, no
from repro.core.transactions import delayed
from repro.core.views import FULL_VIEW
from repro.core.expressions import Var
from repro.runtime.wakeup import derive_subscription, txn_arities

scalars = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.text(alphabet="abc", min_size=1, max_size=2),
    st.booleans(),
)

value_tuples = st.lists(scalars, min_size=1, max_size=4).map(tuple)


@st.composite
def pattern_for(draw, row: tuple) -> Pattern:
    """A pattern guaranteed to match *row*: per field, its constant, a
    wildcard, or a fresh variable."""
    fields = []
    for i, value in enumerate(row):
        kind = draw(st.sampled_from(["const", "wild", "var"]))
        if kind == "const":
            fields.append(value)
        elif kind == "wild":
            fields.append(ANY)
        else:
            fields.append(Var(f"v{i}"))
    return P[tuple(fields)] if len(fields) > 1 else P[fields[0]]


@st.composite
def space_and_probe(draw):
    rows = draw(st.lists(value_tuples, max_size=12))
    probe = draw(value_tuples)
    pat = draw(pattern_for(probe))
    return rows, probe, pat


def _keys_subscription(txn):
    return derive_subscription([txn], FULL_VIEW, {}, mode="keys")


class TestRefinement:
    @given(space_and_probe(), value_tuples)
    @settings(max_examples=120, deadline=None)
    def test_keys_wakes_subset_of_arity_wakes(self, drawn, change_row):
        """Any change that wakes the keys subscription is one the arity
        oracle would also deliver."""
        rows, probe, pat = drawn
        txn = delayed(exists().match(pat)).build()
        sub = _keys_subscription(txn)
        arities = txn_arities(txn.query)
        ds = Dataspace()
        inst = ds.insert(change_row)
        if sub.matches([inst]):
            assert arities is None or inst.arity in arities

    @given(space_and_probe())
    @settings(max_examples=120, deadline=None)
    def test_negated_queries_also_refine(self, drawn):
        rows, probe, pat = drawn
        txn = delayed(no(pat)).build()
        sub = _keys_subscription(txn)
        arities = txn_arities(txn.query)
        ds = Dataspace()
        inst = ds.insert(probe)
        if sub.matches([inst]):
            assert arities is None or inst.arity in arities


class TestSoundness:
    @given(space_and_probe())
    @settings(max_examples=150, deadline=None)
    def test_assert_enabling_a_query_always_wakes(self, drawn):
        """If inserting a tuple makes a parked ∃-query satisfiable, the keys
        subscription must match that insertion."""
        rows, probe, pat = drawn
        ds = Dataspace()
        for row in rows:
            ds.insert(row)
        query = exists().match(pat).build()
        txn = delayed(query).build()
        window = FULL_VIEW.window(ds, {})
        before = query.evaluate(window).success
        inst = ds.insert(probe)  # pattern_for guarantees a match
        after = query.evaluate(window.refresh()).success
        assert after  # sanity: the probe satisfies the query
        if not before:
            assert _keys_subscription(txn).matches([inst])

    @given(space_and_probe())
    @settings(max_examples=150, deadline=None)
    def test_retract_enabling_a_negated_query_always_wakes(self, drawn):
        """If retracting a tuple makes a parked ¬-query satisfiable, the
        keys subscription must match that retraction."""
        rows, probe, pat = drawn
        ds = Dataspace()
        for row in rows:
            ds.insert(row)
        blocker = ds.insert(probe)
        query = no(pat)
        txn = delayed(query).build()
        window = FULL_VIEW.window(ds, {})
        before = query.evaluate(window).success
        ds.retract(blocker.tid)
        after = query.evaluate(window.refresh()).success
        if after and not before:
            assert _keys_subscription(txn).matches([blocker])

    @given(space_and_probe())
    @settings(max_examples=100, deadline=None)
    def test_arity_mode_matches_seed_oracle_exactly(self, drawn):
        """``mode="arity"`` reproduces the seed filter: wake iff the changed
        arity is in the oracle set (or the oracle is None)."""
        rows, probe, pat = drawn
        txn = delayed(exists().match(pat)).build()
        sub = derive_subscription([txn], FULL_VIEW, {}, mode="arity")
        arities = txn_arities(txn.query)
        ds = Dataspace()
        for row in rows + [probe]:
            inst = ds.insert(row)
            expected = arities is None or inst.arity in arities
            assert sub.matches([inst]) == (expected or sub.wake_any)
