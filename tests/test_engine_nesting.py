"""Engine tests: nested and combined flow-of-control constructs."""


from repro.core.actions import EXIT, ABORT, assert_tuple, let
from repro.core.constructs import guarded, repeat, replicate, select, seq
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed, immediate
from repro.runtime.engine import Engine


def run_single(body, rows=(), seed=0, defs=()):
    main = ProcessDefinition("Main", body=body)
    engine = Engine(definitions=[main, *defs], seed=seed)
    engine.assert_tuples(rows)
    engine.start("Main")
    return engine, engine.run(max_steps=200_000)


class TestSelectionInsideRepetition:
    def test_repetition_body_contains_selection(self):
        # NB: guard bindings cross into later statements only via `let`
        # (paper: "∃p: [index,p] -> let X = p ; ...")
        a = Var("a")
        N = Var("N")
        engine, __ = run_single(
            [
                repeat(
                    guarded(
                        immediate(exists(a).match(P["n", a].retract())).then(
                            let("N", a)
                        ),
                        select(
                            guarded(
                                immediate(exists().such_that((N % 2) == 0)).then(
                                    assert_tuple("even", N)
                                )
                            ),
                            guarded(
                                immediate(exists().such_that((N % 2) != 0)).then(
                                    assert_tuple("odd", N)
                                )
                            ),
                        ),
                    )
                )
            ],
            rows=[("n", i) for i in range(6)],
        )
        assert engine.dataspace.count_matching(P["even", ANY]) == 3
        assert engine.dataspace.count_matching(P["odd", ANY]) == 3

    def test_exit_from_inner_selection_ends_only_selection(self):
        # exit in a selection GUARD propagates out of the selection; with an
        # enclosing repetition it terminates that repetition
        a = Var("a")
        N = Var("N")
        engine, __ = run_single(
            [
                repeat(
                    guarded(
                        immediate(exists(a).match(P["n", a].retract())).then(
                            let("N", a)
                        ),
                        select(
                            guarded(
                                immediate(exists().such_that(N == 2)).then(EXIT)
                            ),
                            guarded(
                                immediate(exists().such_that(N != 2)).then(
                                    assert_tuple("kept", N)
                                )
                            ),
                        ),
                    )
                ),
                immediate().then(assert_tuple("after", 1)),
            ],
            rows=[("n", i) for i in range(5)],
            seed=1,
        )
        assert ("after", 1) in engine.dataspace.multiset()
        # everything processed before the n=2 draw was kept
        assert engine.dataspace.count_matching(P["kept", ANY]) >= 0


class TestNestedRepetition:
    def test_inner_repetition_drains_per_outer_item(self):
        a, b = variables("a b")
        A = Var("A")
        engine, __ = run_single(
            [
                repeat(
                    guarded(
                        immediate(exists(a).match(P["batch", a].retract())).then(
                            let("A", a)
                        ),
                        repeat(
                            guarded(
                                immediate(
                                    exists(b).match(P["work", A, b].retract())
                                ).then(assert_tuple("done", A, b))
                            )
                        ),
                    )
                )
            ],
            rows=[("batch", 0), ("batch", 1), ("work", 0, 10), ("work", 0, 11), ("work", 1, 20)],
        )
        assert engine.dataspace.count_matching(P["done", ANY, ANY]) == 3
        assert engine.dataspace.count_matching(P["work", ANY, ANY]) == 0

    def test_exit_in_inner_repetition_continues_outer(self):
        a, b = variables("a b")
        A = Var("A")
        engine, __ = run_single(
            [
                repeat(
                    guarded(
                        immediate(exists(a).match(P["batch", a].retract())).then(
                            let("A", a)
                        ),
                        repeat(
                            guarded(
                                immediate(exists(b).match(P["stop", A, b].retract())).then(EXIT)
                            ),
                            guarded(
                                immediate(exists(b).match(P["work", A, b].retract())).then(
                                    assert_tuple("done", A, b)
                                )
                            ),
                        ),
                        immediate().then(assert_tuple("batch_done", A)),
                    )
                )
            ],
            rows=[("batch", 0), ("batch", 1), ("stop", 0, 1), ("work", 1, 5)],
            seed=2,
        )
        # both batches completed despite batch 0's early inner exit
        assert engine.dataspace.count_matching(P["batch_done", ANY]) == 2


class TestReplicationNesting:
    def test_replication_inside_repetition(self):
        a, b = variables("a b")
        engine, __ = run_single(
            [
                repeat(
                    guarded(
                        immediate(exists(a).match(P["wave", a].retract())),
                        replicate(
                            guarded(
                                immediate(
                                    exists(b).match(P["item", a, b].retract())
                                ).then(assert_tuple("out", a, b))
                            )
                        ),
                    )
                )
            ],
            rows=[("wave", 0), ("wave", 1)]
            + [("item", w, i) for w in (0, 1) for i in range(4)],
        )
        assert engine.dataspace.count_matching(P["out", ANY, ANY]) == 8

    def test_replica_bodies_with_nested_replication(self):
        # replicas share the process environment, so `let` is unsafe for
        # per-replica state; carry the binding through the dataspace instead
        a, a2, b = variables("a a2 b")
        engine, __ = run_single(
            [
                replicate(
                    guarded(
                        immediate(exists(a).match(P["outer", a].retract())).then(
                            assert_tuple("active", a)
                        ),
                        replicate(
                            guarded(
                                immediate(
                                    exists(a2, b).match(
                                        P["active", a2], P["inner", a2, b].retract()
                                    )
                                ).then(assert_tuple("leaf", a2, b))
                            )
                        ),
                    )
                )
            ],
            rows=[("outer", 0), ("outer", 1)]
            + [("inner", w, i) for w in (0, 1) for i in range(3)],
        )
        assert engine.dataspace.count_matching(P["leaf", ANY, ANY]) == 6

    def test_abort_deep_inside_nesting_kills_process(self):
        a = Var("a")
        N = Var("N")
        engine, result = run_single(
            [
                repeat(
                    guarded(
                        immediate(exists(a).match(P["n", a].retract())).then(
                            let("N", a)
                        ),
                        select(
                            guarded(immediate(exists().such_that(N == 1)).then(ABORT)),
                            guarded(immediate(exists().such_that(N != 1))),
                        ),
                    )
                ),
                immediate().then(assert_tuple("survived", 1)),
            ],
            rows=[("n", 1)],
        )
        assert result.completed
        assert ("survived", 1) not in engine.dataspace.multiset()
        assert engine.society.get(1).status.value == "aborted"


class TestSequenceEdgeCases:
    def test_deeply_nested_sequences(self):
        engine, __ = run_single(
            [seq(seq(seq(immediate().then(assert_tuple("deep", 1)))))]
        )
        assert ("deep", 1) in engine.dataspace.multiset()

    def test_guard_lets_visible_in_branch_body(self):
        a = Var("a")
        engine, __ = run_single(
            [
                select(
                    guarded(
                        immediate(exists(a).match(P["x", a].retract())).then(
                            let("N", a * 10)
                        ),
                        immediate().then(assert_tuple("scaled", Var("N"))),
                    )
                )
            ],
            rows=[("x", 4)],
        )
        assert ("scaled", 40) in engine.dataspace.multiset()

    def test_selection_after_blocking_statement_with_producer(self):
        a = Var("a")
        consumer = ProcessDefinition(
            "Consumer",
            body=[
                delayed(exists(a).match(P["go", a].retract())),
                select(guarded(immediate().then(assert_tuple("then", 1)))),
            ],
        )
        producer = ProcessDefinition(
            "Producer", body=[immediate().then(assert_tuple("go", 1))]
        )
        engine = Engine(definitions=[consumer, producer], seed=1, policy="fifo")
        engine.start("Consumer")
        engine.start("Producer")
        assert engine.run().completed
        assert ("then", 1) in engine.dataspace.multiset()
