"""Unit tests for the surface-language compiler (repro.lang.compiler)."""

import pytest

from repro.core.patterns import WildElement
from repro.core.transactions import Mode
from repro.core.values import Atom
from repro.errors import ParseError
from repro.lang import compile_process, compile_program
from repro.runtime.engine import Engine


class TestNameResolution:
    def test_params_become_variables(self):
        d = compile_process("process P(k) behavior -> (echo, k) end")
        pattern = d.body.body[0].transaction.actions[0].pattern
        # field 1 must be Var("k"), not Atom("k")
        from repro.core.patterns import VarElement

        assert isinstance(pattern.elements[1], VarElement)

    def test_unbound_names_become_atoms(self):
        d = compile_process("process P() behavior -> (year, nil) end")
        pattern = d.body.body[0].transaction.actions[0].pattern
        values = pattern.instantiate.__self__  # just check compile worked
        from repro.core.expressions import EvalContext, Bindings

        got = pattern.instantiate(EvalContext(Bindings()))
        assert got == (Atom("year"), Atom("nil"))

    def test_quantified_variables_scoped_to_transaction(self):
        d = compile_process(
            "process P() behavior exists a : <x, a>^ -> (y, a) end"
        )
        txn = d.body.body[0].transaction
        assert txn.query.variables == ("a",)

    def test_let_visible_to_later_statements(self):
        d = compile_process(
            "process P() behavior -> let N = 2 ; -> (x, N + 1) end"
        )
        engine = Engine(definitions=[d], seed=0)
        engine.start("P")
        engine.run()
        assert ("x", 3) in engine.dataspace.multiset()

    def test_registered_function_called(self):
        d = compile_process(
            "process P() behavior : double(2) = 4 -> (ok, 1) end",
            functions={"double": lambda x: 2 * x},
        )
        engine = Engine(definitions=[d], seed=0)
        engine.start("P")
        engine.run()
        assert ("ok", 1) in engine.dataspace.multiset()

    def test_unknown_function_rejected(self):
        with pytest.raises(ParseError):
            compile_process("process P() behavior : nope(1) -> skip end")


class TestLowering:
    def test_tags_map_to_modes(self):
        d = compile_process(
            "process P() behavior -> skip ; <x> => skip ; <x> ^^ skip end"
        )
        modes = [s.transaction.mode for s in d.body.body]
        assert modes == [Mode.IMMEDIATE, Mode.DELAYED, Mode.CONSENSUS]

    def test_wildcards(self):
        d = compile_process("process P() behavior exists a : <x, *, a> -> skip end")
        pattern = d.body.body[0].transaction.query.atoms[0].pattern
        assert isinstance(pattern.elements[1], WildElement)

    def test_view_rules_compiled(self):
        d = compile_process(
            "process P(i) import some a: <i, a> if a > 0 behavior -> skip end"
        )
        rule = d.view.imports[0]
        assert rule.guard is not None

    def test_duplicate_process_rejected(self):
        with pytest.raises(ParseError):
            compile_program(
                "process P() behavior -> skip end process P() behavior -> skip end"
            )

    def test_exit_and_abort_actions(self):
        d = compile_process("process P() behavior -> exit ; -> abort end")
        from repro.core.actions import Abort, Exit

        assert isinstance(d.body.body[0].transaction.actions[0], Exit)
        assert isinstance(d.body.body[1].transaction.actions[0], Abort)


class TestEndToEnd:
    def test_paper_example_harvest_years(self):
        source = """
        process Harvest()
        behavior
          *[ exists a : <year, a>^ : a > 87 -> (found, a) ]
        end
        """
        d = compile_process(source)
        engine = Engine(definitions=[d], seed=0)
        engine.assert_tuples([("year", y) for y in (85, 88, 90)])
        engine.start("Harvest")
        engine.run()
        found = sorted(
            v[1] for v in engine.dataspace.multiset() if v[0] == Atom("found")
        )
        assert found == [88, 90]

    def test_replication_via_surface_syntax(self):
        source = """
        process Sum3()
        behavior
          ~[ exists n, a, m, b : <n, a>^, <m, b>^ : not n = m -> (m, a + b) ]
        end
        """
        d = compile_process(source)
        engine = Engine(definitions=[d], seed=1)
        engine.assert_tuples([(k, k) for k in range(1, 9)])
        engine.start("Sum3")
        engine.run()
        (final,) = engine.dataspace.snapshot()
        assert final[1] == 36

    def test_spawn_across_compiled_processes(self):
        source = """
        process Parent()
        behavior
          -> Child(5)
        end
        process Child(n)
        behavior
          -> (born, n)
        end
        """
        defs = compile_program(source)
        engine = Engine(definitions=defs.values(), seed=0)
        engine.start("Parent")
        engine.run()
        assert ("born", 5) in engine.dataspace.multiset()

    def test_has_membership_end_to_end(self):
        source = """
        process Check()
        behavior
          [ : has(some v: <n, v> : v > 10) -> (big, 1)
          | : not has(some v: <n, v> : v > 10) -> (small, 1) ]
        end
        """
        d = compile_process(source)
        engine = Engine(definitions=[d], seed=0)
        engine.assert_tuples([("n", 5), ("n", 20)])
        engine.start("Check")
        engine.run()
        assert ("big", 1) in engine.dataspace.multiset()
