"""Unit tests for the joint-match engine (repro.core.matching)."""

import random


from repro.core.expressions import variables
from repro.core.matching import first_joint_match, iter_joint_matches
from repro.core.patterns import ANY, P


def all_matches(space, patterns, bound=None, **kw):
    return list(iter_joint_matches(space, patterns, bound or {}, **kw))


class TestSingleAtom:
    def test_one_match(self, space, abc):
        a, _, _ = abc
        space.insert(("year", 87))
        got = all_matches(space, [P["year", a]])
        assert len(got) == 1
        bindings, insts = got[0]
        assert bindings["a"] == 87
        assert insts[0].values == ("year", 87)

    def test_no_match(self, space):
        space.insert(("year", 87))
        assert all_matches(space, [P["day", ANY]]) == []

    def test_all_instances_enumerated(self, space, abc):
        a, _, _ = abc
        for y in (85, 87, 90):
            space.insert(("year", y))
        got = {b["a"] for b, _ in all_matches(space, [P["year", a]])}
        assert got == {85, 87, 90}


class TestJoins:
    def test_join_through_shared_variable(self, space, abc):
        a, b, _ = abc
        space.insert(("edge", 1, 2))
        space.insert(("edge", 2, 3))
        got = all_matches(space, [P["edge", a, b], P["edge", b, ANY]])
        # only 1->2->3 chains
        assert len(got) == 1
        assert got[0][0]["a"] == 1 and got[0][0]["b"] == 2

    def test_distinct_instances_required(self, space, abc):
        a, b, _ = abc
        space.insert(("n", 1))
        # one tuple cannot satisfy two atoms at once
        assert all_matches(space, [P["n", a], P["n", b]]) == []
        space.insert(("n", 1))
        got = all_matches(space, [P["n", a], P["n", b]])
        # two identical instances can (both orders enumerate)
        assert len(got) == 2

    def test_join_with_computed_field(self, space, abc):
        a, b, _ = abc
        space.insert((4, 10))
        space.insert((8, 32))
        k = variables("k")[0]
        got = all_matches(space, [P[k, a], P[k * 2, b]], {"k": 4} | {})
        # explicit binding of k narrows the join
        assert len(got) == 1
        assert got[0][0]["a"] == 10 and got[0][0]["b"] == 32

    def test_exclusion_set_respected(self, space, abc):
        a, _, _ = abc
        kept = space.insert(("x", 1))
        skipped = space.insert(("x", 2))
        got = all_matches(space, [P["x", a]], excluded={skipped.tid})
        assert [b["a"] for b, _ in got] == [1]
        assert got[0][1][0] is kept


class TestFirstMatch:
    def test_predicate_filtering(self, space, abc):
        a, _, _ = abc
        for y in (85, 87, 90):
            space.insert(("year", y))
        hit = first_joint_match(
            space, [P["year", a]], {}, predicate=lambda b, i: b["a"] > 88
        )
        assert hit is not None
        assert hit[0]["a"] == 90

    def test_none_when_no_match(self, space):
        assert first_joint_match(space, [P["zzz"]], {}) is None


class TestArbitraryChoice:
    def test_rng_rotation_covers_choices(self, space, abc):
        a, _, _ = abc
        for y in range(10):
            space.insert(("year", y))
        seen = set()
        for seed in range(40):
            rng = random.Random(seed)
            hit = first_joint_match(space, [P["year", a]], {}, rng=rng)
            seen.add(hit[0]["a"])
        # "an arbitrary one of them is selected": different seeds must be
        # able to pick different tuples
        assert len(seen) > 3

    def test_without_rng_deterministic(self, space, abc):
        a, _, _ = abc
        for y in range(10):
            space.insert(("year", y))
        first = first_joint_match(space, [P["year", a]], {})
        again = first_joint_match(space, [P["year", a]], {})
        assert first[0] == again[0]
