"""Tests for the pretty-printer, including compile→pretty→compile round trips."""

import pytest

from repro.core.actions import assert_tuple, let
from repro.core.constructs import guarded, repeat
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import Membership, exists, no
from repro.core.transactions import delayed, immediate
from repro.core.values import Atom
from repro.core.views import import_rule
from repro.lang import compile_process
from repro.lang.pretty import (
    PrettyError,
    pretty_expr,
    pretty_pattern,
    pretty_process,
    pretty_query,
    pretty_transaction,
)
from repro.programs import sum1_definition, sum2_definition, sum3_definition
from repro.programs.plist import find_definition, search_definition, sort_definition
from repro.runtime.engine import Engine


class TestUnits:
    def test_expr(self):
        a, b = variables("a b")
        assert pretty_expr((a + b) * 2) == "((a + b) * 2)"
        assert pretty_expr(~(a > 1)) == "(not (a > 1))"
        assert pretty_expr((a > 0) & (b > 0)) == "((a > 0) and (b > 0))"

    def test_values(self):
        assert pretty_expr(P[Atom("x")].elements[0].expr) == "x"
        from repro.core.expressions import Const

        assert pretty_expr(Const("hi there")) == '"hi there"'
        assert pretty_expr(Const(True)) == "true"
        assert pretty_expr(Const(2.5)) == "2.5"

    def test_pattern(self):
        a = Var("a")
        assert pretty_pattern(P[Atom("year"), a, ANY]) == "<year, a, *>"

    def test_query(self):
        a = Var("a")
        q = exists(a).match(P[Atom("year"), a].retract()).such_that(a > 87).build()
        text = pretty_query(q)
        assert text == "exists a : <year, a>^ : (a > 87)"

    def test_negated_query(self):
        assert pretty_query(no(P[Atom("x"), ANY])) == "no <x, *>"

    def test_membership_declares_locals(self):
        v = Var("v")
        m = Membership(P[Atom("n"), v], test=(v > 3))
        assert pretty_expr(m) == "has(some v: <n, v> : (v > 3))"

    def test_transaction(self):
        a = Var("a")
        txn = (
            delayed(exists(a).match(P[Atom("year"), a].retract()))
            .then(let("N", a), assert_tuple(Atom("found"), a))
            .build()
        )
        text = pretty_transaction(txn)
        assert "=>" in text and "let N = a" in text and "(found, a)" in text

    def test_where_rules_rejected(self):
        pi = Var("pi")
        rule = import_rule(Atom("label"), pi, where=[P[Atom("t"), pi]])
        d = ProcessDefinition("X", body=[immediate()], imports=[rule])
        with pytest.raises(PrettyError):
            pretty_process(d)


def _behaviour_equivalent(defn, runner):
    """Run original and round-tripped definitions; compare dataspaces."""
    text = pretty_process(defn)
    clone = compile_process(text)
    return runner(defn), runner(clone), text


class TestRoundTrips:
    def _run_harvest(self, definition):
        engine = Engine(definitions=[definition], seed=4)
        engine.assert_tuples([(Atom("year"), y) for y in (85, 88, 90, 87)])
        engine.start(definition.name)
        engine.run()
        return engine.dataspace.snapshot()

    def test_harvest_round_trip(self):
        a = Var("a")
        harvest = ProcessDefinition(
            "Harvest",
            body=[
                repeat(
                    guarded(
                        immediate(
                            exists(a)
                            .match(P[Atom("year"), a].retract())
                            .such_that(a > 87)
                        ).then(assert_tuple(Atom("found"), a))
                    )
                )
            ],
        )
        original, clone, text = _behaviour_equivalent(harvest, self._run_harvest)
        assert original == clone
        assert "process Harvest()" in text

    def test_sum2_round_trip(self):
        defn = sum2_definition()
        text = pretty_process(defn)
        clone = compile_process(text)

        import math

        def run(d):
            n = 16
            engine = Engine(definitions=[d], seed=2)
            engine.assert_tuples([(k, k, 1) for k in range(1, n + 1)])
            for j in range(1, int(math.log2(n)) + 1):
                for k in range(2 ** j, n + 1, 2 ** j):
                    engine.start(d.name, (k, j))
            engine.run()
            return engine.dataspace.snapshot()

        assert run(defn) == run(clone)

    def test_sum3_round_trip(self):
        defn = sum3_definition()
        clone = compile_process(pretty_process(defn))

        def run(d):
            engine = Engine(definitions=[d], seed=3)
            engine.assert_tuples([(k, 1) for k in range(1, 9)])
            engine.start(d.name)
            engine.run()
            return engine.dataspace.snapshot()

        assert run(defn) == run(clone)

    def test_sum1_pretty_parses(self):
        # Sum1 spawns itself; the pretty text must at least re-compile
        text = pretty_process(sum1_definition())
        clone = compile_process(text)
        assert clone.name == "Sum1"
        assert clone.params == ("k", "j")

    def test_sort_round_trip(self):
        from repro.core.values import NIL
        from repro.workloads import property_list_rows, chain_order

        defn = sort_definition()
        text = pretty_process(defn)
        # Sort's comparisons are host functions: re-register them
        clone = compile_process(
            text, functions={"gt": lambda x, y: x > y, "le": lambda x, y: x <= y}
        )

        def run(d):
            rows = property_list_rows([("d", 1), ("a", 2), ("c", 3), ("b", 4)])
            engine = Engine(definitions=[d], seed=5)
            engine.assert_tuples(rows)
            for i in range(4):
                engine.start(d.name, (i, i + 1 if i + 1 < 4 else NIL))
            engine.run()
            return chain_order([inst.values for inst in engine.dataspace.instances()])

        assert run(defn) == run(clone) == ["a", "b", "c", "d"]

    def test_find_and_search_pretty_parse(self):
        for definition in (find_definition(), search_definition()):
            clone = compile_process(pretty_process(definition))
            assert clone.name == definition.name
