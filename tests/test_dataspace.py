"""Unit tests for the content-addressable dataspace (repro.core.dataspace)."""

import pytest

from repro.core.dataspace import DataspaceChange
from repro.core.patterns import ANY, P
from repro.errors import SDLError


class TestBasicMutation:
    def test_insert_returns_instance(self, space):
        inst = space.insert(("year", 87))
        assert inst.values == ("year", 87)
        assert inst.tid in space
        assert len(space) == 1

    def test_multiset_semantics(self, space):
        a = space.insert(("x", 1))
        b = space.insert(("x", 1))
        assert len(space) == 2
        space.retract(a.tid)
        # "retracting one instance of a tuple may leave other instances"
        assert len(space) == 1
        assert b.tid in space

    def test_retract_returns_instance(self, space):
        inst = space.insert(("x",))
        got = space.retract(inst.tid)
        assert got is inst
        assert inst.tid not in space

    def test_retract_missing_raises(self, space):
        inst = space.insert(("x",))
        space.retract(inst.tid)
        with pytest.raises(SDLError):
            space.retract(inst.tid)

    def test_get_missing_raises(self, space):
        from repro.core.tuples import TupleId

        with pytest.raises(SDLError):
            space.get(TupleId(99, 0))

    def test_serials_monotone(self, space):
        a = space.insert(("x",))
        b = space.insert(("y",))
        assert b.tid.serial > a.tid.serial

    def test_owner_recorded(self, space):
        inst = space.insert(("x",), owner=42)
        assert inst.owner == 42

    def test_insert_many(self, space):
        rows = [("a", i) for i in range(5)]
        out = space.insert_many(rows)
        assert len(out) == 5
        assert len(space) == 5


class TestVersioning:
    def test_version_bumps_on_insert_and_retract(self, space):
        v0 = space.version
        inst = space.insert(("x",))
        assert space.version == v0 + 1
        space.retract(inst.tid)
        assert space.version == v0 + 2

    def test_listener_sees_changes(self, space):
        seen: list[DataspaceChange] = []
        unsubscribe = space.subscribe(seen.append)
        inst = space.insert(("x",))
        space.retract(inst.tid)
        assert [c.kind for c in seen] == [DataspaceChange.ASSERT, DataspaceChange.RETRACT]
        unsubscribe()
        space.insert(("y",))
        assert len(seen) == 2


class TestContentAddressing:
    def test_by_arity(self, space):
        space.insert(("a",))
        space.insert(("b", 1))
        space.insert(("c", 1, 2))
        assert len(space.by_arity(2)) == 1
        assert len(space.by_arity(4)) == 0

    def test_by_field(self, space):
        space.insert(("year", 87))
        space.insert(("year", 90))
        space.insert(("day", 87))
        assert len(space.by_field(2, 0, "year")) == 2
        assert len(space.by_field(2, 1, 87)) == 2
        assert len(space.by_field(2, 1, 99)) == 0

    def test_candidates_use_narrowest_index(self, space):
        for i in range(10):
            space.insert(("bulk", i))
        space.insert(("rare", 0))
        # probing on the "rare" constant must not return the bulk tuples
        assert len(space.candidates(P["rare", ANY])) == 1

    def test_candidates_no_constants_fall_back_to_arity(self, space, abc):
        a, b, _ = abc
        space.insert(("x", 1))
        space.insert(("y", 2, 3))
        assert len(space.candidates(P[a, b])) == 1

    def test_candidates_missing_index_short_circuits(self, space):
        space.insert(("x", 1))
        assert space.candidates(P["zzz", ANY]) == []

    def test_candidates_respect_bound_variables(self, space, abc):
        a, b, _ = abc
        space.insert(("x", 1))
        space.insert(("x", 2))
        got = space.candidates(P["x", a], {"a": 2})
        assert [inst.values for inst in got] == [("x", 2)]

    def test_find_and_count_matching(self, year_space, abc):
        a, _, _ = abc
        assert year_space.count_matching(P["year", a]) == 4
        found = year_space.find_matching(P["year", 87])
        assert [inst.values for inst in found] == [("year", 87)]

    def test_index_cleaned_on_retract(self, space):
        inst = space.insert(("x", 1))
        space.retract(inst.tid)
        assert space.candidates(P["x", ANY]) == []
        assert len(space.by_arity(2)) == 0


class TestInspection:
    def test_snapshot_sorted_and_stable(self, space):
        space.insert(("b", 2))
        space.insert(("a", 1))
        space.insert(("a", 1))
        snap = space.snapshot()
        assert snap == sorted(snap, key=lambda v: tuple(map(repr, v)))
        assert len(snap) == 3

    def test_multiset_counts(self, space):
        space.insert(("a", 1))
        space.insert(("a", 1))
        space.insert(("b", 2))
        assert space.multiset() == {("a", 1): 2, ("b", 2): 1}

    def test_repr_small_and_large(self, space):
        space.insert(("x", 1))
        assert "x" in repr(space)
        for i in range(20):
            space.insert(("y", i))
        assert "|D|=" in repr(space)

    def test_heterogeneous_snapshot_does_not_compare_values(self, space):
        # int vs str fields would break a naive sorted(); ours must not
        space.insert((1, 2))
        space.insert(("a", "b"))
        assert len(space.snapshot()) == 2
