"""Regression tests for the executor/dataspace hot-path correctness sweep.

Each test here pins a bug that group commit (PR 2's tentpole) would have
amplified: deep union-find recursion under large consensus partitions,
listener bookkeeping that detached the wrong registration, binding leakage
between match candidates in the snapshot lens, and a replication pump that
kept firing for an aborted process.

The observability PR added three more latent-leak fixes, pinned at the
bottom: the recovery log's dataspace listener outliving its engine,
``Scheduler.take_round`` ignoring ``round_size``, and
``Dataspace.count_matching``/``find_matching`` sharing one ``bound`` dict
across candidates.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import ABORT, assert_tuple
from repro.core.consensus import partition
from repro.core.constructs import guarded, replicate
from repro.core.dataspace import Dataspace
from repro.core.expressions import Var
from repro.core.patterns import ANY, P, Pattern
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import immediate
from repro.runtime.engine import Engine
from repro.runtime.events import Trace
from repro.runtime.executor import _SnapshotLens
from repro.runtime.scheduler import Scheduler


# ---------------------------------------------------------------------------
# consensus.partition / _UnionFind: deep chains must not blow the stack
# ---------------------------------------------------------------------------


class _StubWindow:
    """Exposes only what ``partition`` consumes: an iterable footprint.

    A tuple (rather than a set) keeps footprint iteration order under the
    test's control, which is what lets us steer the union-find into its
    worst-case parent chains.
    """

    __slots__ = ("_tids",)

    def __init__(self, tids):
        self._tids = tuple(tids)

    def footprint(self):
        return self._tids


class TestPartitionScale:
    def test_five_thousand_process_chain_partition(self):
        # Adversarial insertion order: N seeder processes each owning one
        # tuple, then probe processes whose ordered footprints repeatedly
        # graft the current component root under a fresh seeder.  Unions
        # only ever touch the top of the parent chain, so path compression
        # never flattens it during construction; the final find() walks a
        # chain ~N deep.  With the old recursive ``_UnionFind.find`` this
        # construction raises RecursionError at ~1000 processes.
        n = 2500  # 2n + 1 = 5001 processes, chain depth ~n
        windows = {}
        for i in range(1, n + 1):
            windows[i] = _StubWindow([("t", i)])  # seeders
        windows[0] = _StubWindow([("t", 0)])  # base of the chain
        for i in range(1, n + 1):
            windows[n + i] = _StubWindow([("t", i - 1), ("t", i)])  # probes
        groups = partition(windows)
        assert len(groups) == 1
        assert len(groups[0]) == 2 * n + 1

    def test_disjoint_communities_stay_disjoint_at_scale(self):
        windows = {
            pid: _StubWindow([("community", pid % 50)]) for pid in range(5000)
        }
        groups = partition(windows)
        assert len(groups) == 50
        assert all(len(g) == 100 for g in groups)


# ---------------------------------------------------------------------------
# Dataspace.subscribe: token-keyed registrations
# ---------------------------------------------------------------------------


class TestSubscribeTokens:
    def test_double_subscribe_single_unsubscribe(self):
        ds = Dataspace()
        seen: list[int] = []

        def listener(change):
            seen.append(1)

        first = ds.subscribe(listener)
        ds.subscribe(listener)
        first()  # must detach *its own* registration, leaving the second
        ds.insert(("x",))
        assert seen == [1]

    def test_unsubscribe_is_idempotent(self):
        # The pre-fix closure called ``list.remove``, so a double detach of
        # one registration silently removed the *other* equal listener.
        ds = Dataspace()
        seen: list[int] = []

        def listener(change):
            seen.append(1)

        first = ds.subscribe(listener)
        ds.subscribe(listener)
        first()
        first()  # second call must be a no-op, not kill the survivor
        ds.insert(("x",))
        assert seen == [1]

    def test_trace_observe_same_contract(self):
        trace = Trace()
        seen: list[int] = []

        def observer(event):
            seen.append(1)

        detach = trace.observe(observer)
        trace.observe(observer)
        detach()
        detach()
        from repro.runtime.events import TaskWoken

        trace.emit(TaskWoken(step=0, round=0, pid=1))
        assert seen == [1]


# ---------------------------------------------------------------------------
# _SnapshotLens.find_matching: candidate isolation
# ---------------------------------------------------------------------------


class TestSnapshotLensIsolation:
    def test_decoy_prefix_does_not_poison_later_candidates(self):
        # A decoy tuple matches the pattern prefix then fails on the last
        # element; the real tuple (inserted after the decoy, so visited
        # later from the arity index) must still match with clean bindings.
        ds = Dataspace()
        ds.insert(("pair", "v1", "decoy"))
        real = ds.insert(("pair", "v1", "key"))
        window = ds  # Dataspace implements the window candidate protocol
        lens = _SnapshotLens(window, ds.serial)
        a = Var("a")
        matched = lens.find_matching(P["pair", a, "key"])
        assert [inst.tid for inst in matched] == [real.tid]

    def test_caller_bound_dict_never_mutated(self):
        ds = Dataspace()
        ds.insert(("pair", "v1", "decoy"))
        ds.insert(("pair", "v2", "key"))
        lens = _SnapshotLens(ds, ds.serial)
        a = Var("a")
        bound = {"unrelated": 42}
        lens.find_matching(P["pair", a, "key"], bound)
        assert bound == {"unrelated": 42}


# ---------------------------------------------------------------------------
# replication pump: must stop once its process is aborted
# ---------------------------------------------------------------------------


class TestPumpAfterAbort:
    def test_pump_stops_firing_after_replica_body_abort(self):
        # A replica *body* (not a guard action) aborts the process while the
        # pump is still queued.  Pumps live outside the engine task table,
        # so the abort cannot mark them DONE; pre-fix, the orphaned pump
        # kept firing guards for the dead process — here it would consume
        # <job, 1> and assert <looted, 1> on behalf of an aborted process,
        # then park forever and deadlock the run.
        a = Var("a")
        kill_branch = guarded(
            immediate(exists().match(P["kill"].retract())),
            immediate().then(ABORT),  # abort from the replica body
        )
        job_branch = guarded(
            immediate(exists(a).match(P["job", a].retract())).then(
                assert_tuple("looted", a)
            )
        )
        main = ProcessDefinition("Main", body=[replicate(kill_branch, job_branch)])
        feeder = ProcessDefinition(
            "Feeder",
            body=[
                immediate().then(assert_tuple("tick", 1)),
                immediate().then(assert_tuple("tick", 2)),
                immediate().then(assert_tuple("job", 1)),  # after the abort
            ],
        )
        engine = Engine(
            definitions=[main, feeder],
            policy="fifo",  # deterministic round order: replica aborts, then pump steps
            on_deadlock="return",
        )
        engine.assert_tuples([("kill",)])
        engine.start("Main")
        engine.start("Feeder")
        result = engine.run()
        multiset = engine.dataspace.multiset()
        assert ("job", 1) in multiset  # the dead process must not consume it
        assert ("looted", 1) not in multiset
        assert result.completed


# ---------------------------------------------------------------------------
# RecoveryLog: a finished engine must leave no dataspace listener behind
# ---------------------------------------------------------------------------


class TestRecoveryTeardown:
    def _run_engine(self):
        a, b = Var("a"), Var("b")
        merge = ProcessDefinition(
            "Merge",
            body=[
                replicate(
                    immediate(
                        exists(a, b)
                        .match(P[ANY, a].retract(), P[ANY, b].retract())
                    ).then(assert_tuple("sum", a + b))
                )
            ],
        )
        engine = Engine(definitions=[merge], checkpoint_interval=2)
        engine.assert_tuples([(i, i * 10) for i in range(4)])
        engine.start("Merge")
        result = engine.run()
        assert result.completed
        return engine

    def test_finished_engine_leaves_zero_listeners(self):
        # Pre-fix the engine never called ``recovery.close()``, so every
        # finished engine left one live subscription on the dataspace —
        # a leak that also kept taking checkpoints for post-run mutations.
        engine = self._run_engine()
        assert engine.dataspace.listener_count == 0

    def test_post_run_changes_take_no_checkpoints(self):
        engine = self._run_engine()
        taken = engine.recovery.checkpoints_taken
        for i in range(10):
            engine.dataspace.insert(("late", i))
        assert engine.recovery.checkpoints_taken == taken

    def test_recover_and_verify_still_work_after_teardown(self):
        # close() detaches the listener only; checkpoints + journal stay
        # queryable, so post-run forensics keep working.
        engine = self._run_engine()
        engine.recovery.verify()


# ---------------------------------------------------------------------------
# Scheduler.take_round: the round_size cap must be honored
# ---------------------------------------------------------------------------


class _StubItem:
    __slots__ = ("name", "queued")

    def __init__(self, name):
        self.name = name
        self.queued = False

    def __repr__(self):
        return self.name


class TestTakeRoundCap:
    def _scheduler(self, round_size):
        scheduler = Scheduler(random.Random(0), "fifo")
        scheduler.round_size = round_size
        return scheduler

    def test_overflow_stays_ready_and_queued(self):
        # Pre-fix ``take_round`` promoted the whole ready set regardless of
        # ``round_size`` (only ``start_round`` honored the cap).
        scheduler = self._scheduler(2)
        items = [_StubItem(f"i{i}") for i in range(5)]
        for item in items:
            scheduler.enqueue(item)
        first = scheduler.take_round()
        assert first == items[:2]
        assert all(not item.queued for item in first)
        assert all(item.queued for item in items[2:])
        assert scheduler.take_round() == items[2:4]
        assert scheduler.take_round() == items[4:5]
        assert scheduler.take_round() is None

    def test_losers_count_against_cap_but_are_never_dropped(self):
        scheduler = self._scheduler(2)
        items = [_StubItem(f"i{i}") for i in range(3)]
        for item in items:
            scheduler.enqueue(item)
        losers = [_StubItem("L0"), _StubItem("L1"), _StubItem("L2")]
        out = scheduler.take_round(prepend=losers)
        # All three losers lead the round (weak fairness trumps the cap);
        # the ready set contributes nothing and stays queued.
        assert out == losers
        assert all(item.queued for item in items)
        assert scheduler.take_round() == items[:2]

    def test_group_engine_respects_round_size(self):
        a, b = Var("a"), Var("b")
        merge = ProcessDefinition(
            "Merge",
            body=[
                immediate(
                    exists(a, b).match(P[ANY, a].retract(), P[ANY, b].retract())
                ).then(assert_tuple(0, a + b)),
            ],
        )
        engine = Engine(definitions=[merge], commit="group", seed=5)
        engine.assert_tuples([(i, 1) for i in range(8)])
        for _ in range(4):
            engine.start("Merge")
        engine.scheduler.round_size = 1
        result = engine.run()
        assert result.completed
        # One candidate per round means batches can never exceed 1.
        assert result.max_batch == 1
        total = sum(
            inst.values[1] for inst in engine.dataspace.find_matching(P[ANY, ANY])
        )
        assert total == 8


# ---------------------------------------------------------------------------
# Dataspace.count_matching / find_matching: candidate isolation
# ---------------------------------------------------------------------------


class _ScratchPattern(Pattern):
    """A pattern that (legally) treats its ``bound`` dict as scratch space.

    Matches ``<key, v>`` only when the mapping holds no ``_prev`` marker,
    then stashes one.  With per-candidate isolation every candidate sees a
    clean mapping, so *all* candidates match; with the pre-fix shared dict
    the first candidate's stash leaked into every later candidate's match
    and only one tuple ever matched.
    """

    def match(self, values, bound):
        got = super().match(values, bound)
        if got is None or "_prev" in bound:
            return None
        if isinstance(bound, dict):
            bound["_prev"] = values
        return got


class TestDataspaceCandidateIsolation:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=12))
    def test_stateful_pattern_cannot_leak_across_candidates(self, values):
        ds = Dataspace()
        for v in values:
            ds.insert(("key", v))
            ds.insert(("decoy", v, v))  # different arity: never a candidate
        a = Var("a")
        impure = _ScratchPattern(P["key", a].elements)
        pure = P["key", a]
        assert ds.count_matching(impure) == ds.count_matching(pure) == len(values)
        assert [inst.tid for inst in ds.find_matching(impure)] == [
            inst.tid for inst in ds.find_matching(pure)
        ]

    def test_caller_bound_dict_never_mutated(self):
        ds = Dataspace()
        ds.insert(("key", 1))
        ds.insert(("key", 2))
        a = Var("a")
        bound = {"unrelated": 42}
        ds.find_matching(_ScratchPattern(P["key", a].elements), bound)
        ds.count_matching(_ScratchPattern(P["key", a].elements), bound)
        assert bound == {"unrelated": 42}


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
