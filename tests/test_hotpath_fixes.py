"""Regression tests for the executor/dataspace hot-path correctness sweep.

Each test here pins a bug that group commit (PR 2's tentpole) would have
amplified: deep union-find recursion under large consensus partitions,
listener bookkeeping that detached the wrong registration, binding leakage
between match candidates in the snapshot lens, and a replication pump that
kept firing for an aborted process.
"""

from __future__ import annotations

import pytest

from repro.core.actions import ABORT, assert_tuple
from repro.core.consensus import partition
from repro.core.constructs import guarded, replicate
from repro.core.dataspace import Dataspace
from repro.core.expressions import Var
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import immediate
from repro.runtime.engine import Engine
from repro.runtime.events import Trace
from repro.runtime.executor import _SnapshotLens


# ---------------------------------------------------------------------------
# consensus.partition / _UnionFind: deep chains must not blow the stack
# ---------------------------------------------------------------------------


class _StubWindow:
    """Exposes only what ``partition`` consumes: an iterable footprint.

    A tuple (rather than a set) keeps footprint iteration order under the
    test's control, which is what lets us steer the union-find into its
    worst-case parent chains.
    """

    __slots__ = ("_tids",)

    def __init__(self, tids):
        self._tids = tuple(tids)

    def footprint(self):
        return self._tids


class TestPartitionScale:
    def test_five_thousand_process_chain_partition(self):
        # Adversarial insertion order: N seeder processes each owning one
        # tuple, then probe processes whose ordered footprints repeatedly
        # graft the current component root under a fresh seeder.  Unions
        # only ever touch the top of the parent chain, so path compression
        # never flattens it during construction; the final find() walks a
        # chain ~N deep.  With the old recursive ``_UnionFind.find`` this
        # construction raises RecursionError at ~1000 processes.
        n = 2500  # 2n + 1 = 5001 processes, chain depth ~n
        windows = {}
        for i in range(1, n + 1):
            windows[i] = _StubWindow([("t", i)])  # seeders
        windows[0] = _StubWindow([("t", 0)])  # base of the chain
        for i in range(1, n + 1):
            windows[n + i] = _StubWindow([("t", i - 1), ("t", i)])  # probes
        groups = partition(windows)
        assert len(groups) == 1
        assert len(groups[0]) == 2 * n + 1

    def test_disjoint_communities_stay_disjoint_at_scale(self):
        windows = {
            pid: _StubWindow([("community", pid % 50)]) for pid in range(5000)
        }
        groups = partition(windows)
        assert len(groups) == 50
        assert all(len(g) == 100 for g in groups)


# ---------------------------------------------------------------------------
# Dataspace.subscribe: token-keyed registrations
# ---------------------------------------------------------------------------


class TestSubscribeTokens:
    def test_double_subscribe_single_unsubscribe(self):
        ds = Dataspace()
        seen: list[int] = []

        def listener(change):
            seen.append(1)

        first = ds.subscribe(listener)
        ds.subscribe(listener)
        first()  # must detach *its own* registration, leaving the second
        ds.insert(("x",))
        assert seen == [1]

    def test_unsubscribe_is_idempotent(self):
        # The pre-fix closure called ``list.remove``, so a double detach of
        # one registration silently removed the *other* equal listener.
        ds = Dataspace()
        seen: list[int] = []

        def listener(change):
            seen.append(1)

        first = ds.subscribe(listener)
        ds.subscribe(listener)
        first()
        first()  # second call must be a no-op, not kill the survivor
        ds.insert(("x",))
        assert seen == [1]

    def test_trace_observe_same_contract(self):
        trace = Trace()
        seen: list[int] = []

        def observer(event):
            seen.append(1)

        detach = trace.observe(observer)
        trace.observe(observer)
        detach()
        detach()
        from repro.runtime.events import TaskWoken

        trace.emit(TaskWoken(step=0, round=0, pid=1))
        assert seen == [1]


# ---------------------------------------------------------------------------
# _SnapshotLens.find_matching: candidate isolation
# ---------------------------------------------------------------------------


class TestSnapshotLensIsolation:
    def test_decoy_prefix_does_not_poison_later_candidates(self):
        # A decoy tuple matches the pattern prefix then fails on the last
        # element; the real tuple (inserted after the decoy, so visited
        # later from the arity index) must still match with clean bindings.
        ds = Dataspace()
        ds.insert(("pair", "v1", "decoy"))
        real = ds.insert(("pair", "v1", "key"))
        window = ds  # Dataspace implements the window candidate protocol
        lens = _SnapshotLens(window, ds.serial)
        a = Var("a")
        matched = lens.find_matching(P["pair", a, "key"])
        assert [inst.tid for inst in matched] == [real.tid]

    def test_caller_bound_dict_never_mutated(self):
        ds = Dataspace()
        ds.insert(("pair", "v1", "decoy"))
        ds.insert(("pair", "v2", "key"))
        lens = _SnapshotLens(ds, ds.serial)
        a = Var("a")
        bound = {"unrelated": 42}
        lens.find_matching(P["pair", a, "key"], bound)
        assert bound == {"unrelated": 42}


# ---------------------------------------------------------------------------
# replication pump: must stop once its process is aborted
# ---------------------------------------------------------------------------


class TestPumpAfterAbort:
    def test_pump_stops_firing_after_replica_body_abort(self):
        # A replica *body* (not a guard action) aborts the process while the
        # pump is still queued.  Pumps live outside the engine task table,
        # so the abort cannot mark them DONE; pre-fix, the orphaned pump
        # kept firing guards for the dead process — here it would consume
        # <job, 1> and assert <looted, 1> on behalf of an aborted process,
        # then park forever and deadlock the run.
        a = Var("a")
        kill_branch = guarded(
            immediate(exists().match(P["kill"].retract())),
            immediate().then(ABORT),  # abort from the replica body
        )
        job_branch = guarded(
            immediate(exists(a).match(P["job", a].retract())).then(
                assert_tuple("looted", a)
            )
        )
        main = ProcessDefinition("Main", body=[replicate(kill_branch, job_branch)])
        feeder = ProcessDefinition(
            "Feeder",
            body=[
                immediate().then(assert_tuple("tick", 1)),
                immediate().then(assert_tuple("tick", 2)),
                immediate().then(assert_tuple("job", 1)),  # after the abort
            ],
        )
        engine = Engine(
            definitions=[main, feeder],
            policy="fifo",  # deterministic round order: replica aborts, then pump steps
            on_deadlock="return",
        )
        engine.assert_tuples([("kill",)])
        engine.start("Main")
        engine.start("Feeder")
        result = engine.run()
        multiset = engine.dataspace.multiset()
        assert ("job", 1) in multiset  # the dead process must not consume it
        assert ("looted", 1) not in multiset
        assert result.completed


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
