"""Unit tests for the workload generators (repro.workloads)."""

import pytest

from repro.core.values import NIL
from repro.workloads import (
    array_tuples,
    chain_order,
    checkerboard_image,
    connected_regions,
    image_tuples,
    phase_tagged_tuples,
    property_list_rows,
    random_array,
    random_blob_image,
    random_property_list,
    soup_rows,
    stripe_image,
)
from repro.workloads.images import neighbor


class TestArrays:
    def test_reproducible(self):
        assert random_array(16, seed=3) == random_array(16, seed=3)
        assert random_array(16, seed=3) != random_array(16, seed=4)

    def test_bounds(self):
        values = random_array(100, seed=1, low=0, high=5)
        assert all(0 <= v <= 5 for v in values)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            random_array(0)

    def test_tuple_forms(self):
        assert array_tuples([10, 20]) == [(1, 10), (2, 20)]
        assert phase_tagged_tuples([10, 20]) == [(1, 10, 1), (2, 20, 1)]


class TestPropertyLists:
    def test_chain_is_well_formed(self):
        rows = random_property_list(10, seed=2)
        order = chain_order(rows)
        assert len(order) == 10
        assert rows[-1][3] == NIL

    def test_names_distinct(self):
        rows = random_property_list(50, seed=2)
        names = [r[1] for r in rows]
        assert len(set(names)) == 50

    def test_explicit_rows(self):
        rows = property_list_rows([("b", 1), ("a", 2)])
        assert chain_order(rows) == ["b", "a"]

    def test_broken_chain_detected(self):
        rows = random_property_list(5, seed=1)
        rows[2] = (rows[2][0], rows[2][1], rows[2][2], 99)  # dangling next
        with pytest.raises(ValueError):
            chain_order(rows)

    def test_cycle_detected(self):
        rows = property_list_rows([("a", 1), ("b", 2)])
        rows[1] = (1, rows[1][1], rows[1][2], 0)  # cycle back
        with pytest.raises(ValueError):
            chain_order(rows)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            random_property_list(0)


class TestImages:
    def test_neighbor_is_4_connectedness(self):
        assert neighbor((0, 0), (0, 1))
        assert neighbor((0, 0), (1, 0))
        assert not neighbor((0, 0), (1, 1))
        assert not neighbor((0, 0), (0, 0))
        assert not neighbor((0, 0), (0, 2))

    def test_blob_image_reproducible(self):
        a = random_blob_image(8, 8, seed=1)
        b = random_blob_image(8, 8, seed=1)
        assert a.pixels == b.pixels
        assert len(a) == 64

    def test_checkerboard_region_count(self):
        img = checkerboard_image(4, 4, square=2)
        regions = connected_regions(img.threshold(lambda v: 1 if v > 100 else 0))
        assert len(set(regions.values())) == 4  # 2x2 squares

    def test_stripe_region_count(self):
        img = stripe_image(6, 6, stripe=2)
        regions = connected_regions(img.threshold(lambda v: 1 if v > 100 else 0))
        assert len(set(regions.values())) == 3  # three stripes

    def test_image_tuples_tagged(self):
        img = stripe_image(2, 2)
        rows = image_tuples(img)
        assert len(rows) == 4
        assert all(r[0] == "image" for r in rows)

    def test_ground_truth_labels_are_region_maxima(self):
        img = stripe_image(4, 2, stripe=1)
        labels = connected_regions(img.threshold(lambda v: 1 if v > 100 else 0))
        # top stripe y=0, max position (3,0); bottom stripe (3,1)
        assert labels[(0, 0)] == (3, 0)
        assert labels[(0, 1)] == (3, 1)


class TestSoup:
    def test_relevant_fraction(self):
        rows, target = soup_rows(1000, relevant_fraction=0.2, seed=3)
        relevant = [r for r in rows if r[0] == target]
        assert len(rows) == 1000
        assert len(relevant) == 200

    def test_same_arity_everywhere(self):
        rows, __ = soup_rows(100, seed=1)
        assert {len(r) for r in rows} == {3}

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            soup_rows(10, relevant_fraction=1.5)

    def test_reproducible(self):
        assert soup_rows(50, seed=9) == soup_rows(50, seed=9)
