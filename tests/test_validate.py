"""Tests for the static program validator (repro.core.validate)."""


from repro.core.actions import EXIT, assert_tuple, let, spawn
from repro.core.constructs import guarded, select
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import Membership, exists
from repro.core.transactions import delayed, immediate
from repro.core.validate import Issue, validate_process, validate_program
from repro.programs import (
    find_definition,
    search_definition,
    sort_definition,
    sum1_definition,
    sum2_definition,
    sum3_definition,
)


def codes(issues):
    return sorted(issue.code for issue in issues)


class TestCleanPrograms:
    def test_paper_programs_are_clean(self):
        defs = [
            sum2_definition(),
            sum3_definition(),
            find_definition(),
            search_definition(),
            sort_definition(),
        ]
        for definition in defs:
            assert validate_process(definition) == [], definition.name

    def test_sum1_clean_in_program_context(self):
        # Sum1 spawns itself: needs program-level resolution
        assert validate_program([sum1_definition()]) == []


class TestSpawnChecks:
    def test_unknown_target(self):
        bad = ProcessDefinition("P", body=[immediate().then(spawn("Ghost"))])
        issues = validate_program([bad])
        assert codes(issues) == ["SDL001"]
        assert "Ghost" in issues[0].message

    def test_arity_mismatch(self):
        child = ProcessDefinition("Child", params=("a", "b"))
        parent = ProcessDefinition("P", body=[immediate().then(spawn("Child", 1))])
        issues = validate_program([parent, child])
        assert codes(issues) == ["SDL002"]

    def test_correct_spawn_ok(self):
        child = ProcessDefinition("Child", params=("a",))
        parent = ProcessDefinition("P", body=[immediate().then(spawn("Child", 1))])
        assert validate_program([parent, child]) == []


class TestVariableChecks:
    def test_unbound_in_assertion(self):
        ghost = Var("ghost")
        bad = ProcessDefinition("P", body=[immediate().then(assert_tuple("x", ghost))])
        assert codes(validate_process(bad)) == ["SDL003"]

    def test_unbound_in_test(self):
        a, ghost = variables("a ghost")
        bad = ProcessDefinition(
            "P",
            body=[immediate(exists(a).match(P["x", a]).such_that(ghost > 1))],
        )
        assert codes(validate_process(bad)) == ["SDL003"]

    def test_let_flows_forward(self):
        good = ProcessDefinition(
            "P",
            body=[
                immediate().then(let("N", 2)),
                immediate().then(assert_tuple("x", Var("N"))),
            ],
        )
        assert validate_process(good) == []

    def test_query_variable_visible_to_actions(self):
        a = Var("a")
        good = ProcessDefinition(
            "P",
            body=[
                immediate(exists(a).match(P["x", a].retract())).then(
                    assert_tuple("y", a + 1)
                )
            ],
        )
        assert validate_process(good) == []

    def test_membership_locals_not_flagged(self):
        v = Var("v")
        good = ProcessDefinition(
            "P",
            body=[immediate(exists().such_that(Membership(P["n", v], test=(v > 0))))],
        )
        assert validate_process(good) == []

    def test_membership_outer_reference_checked(self):
        v, outer = variables("v outer")
        bad = ProcessDefinition(
            "P",
            body=[
                immediate(
                    exists().such_that(Membership(P["n", v], test=(v > outer)))
                )
            ],
        )
        assert codes(validate_process(bad)) == ["SDL003"]

    def test_unused_quantified_variable(self):
        a, b = variables("a b")
        lazy = ProcessDefinition(
            "P", body=[immediate(exists(a, b).match(P["x", a]))]
        )
        assert codes(validate_process(lazy)) == ["SDL006"]


class TestExportChecks:
    def test_impossible_export_flagged(self):
        bad = ProcessDefinition(
            "P",
            exports=[P["allowed", ANY]],
            body=[immediate().then(assert_tuple("forbidden", 1))],
        )
        assert codes(validate_process(bad)) == ["SDL004"]

    def test_matching_export_ok(self):
        good = ProcessDefinition(
            "P",
            exports=[P["allowed", ANY]],
            body=[immediate().then(assert_tuple("allowed", 1))],
        )
        assert validate_process(good) == []

    def test_unrestricted_export_never_flagged(self):
        good = ProcessDefinition(
            "P", body=[immediate().then(assert_tuple("anything", 1))]
        )
        assert validate_process(good) == []

    def test_variable_first_field_assumed_coverable(self):
        g = Var("g")
        good = ProcessDefinition(
            "P",
            params=("g",),
            exports=[P[g, ANY]],
            body=[immediate().then(assert_tuple(g, 1))],
        )
        assert validate_process(good) == []


class TestStyleChecks:
    def test_never_blocking_delayed(self):
        odd = ProcessDefinition("P", body=[delayed().then(assert_tuple("x", 1))])
        assert codes(validate_process(odd)) == ["SDL005"]

    def test_unreachable_after_exit(self):
        dead = ProcessDefinition(
            "P",
            body=[
                immediate().then(EXIT),
                immediate().then(assert_tuple("never", 1)),
            ],
        )
        assert codes(validate_process(dead)) == ["SDL007"]

    def test_conditional_exit_not_flagged(self):
        a = Var("a")
        fine = ProcessDefinition(
            "P",
            body=[
                immediate(exists(a).match(P["x", a])).then(EXIT),
                immediate().then(assert_tuple("sometimes", 1)),
            ],
        )
        assert validate_process(fine) == []

    def test_branch_bodies_checked(self):
        ghost = Var("ghost")
        bad = ProcessDefinition(
            "P",
            body=[
                select(
                    guarded(
                        immediate(),
                        immediate().then(assert_tuple("x", ghost)),
                    )
                )
            ],
        )
        assert codes(validate_process(bad)) == ["SDL003"]


class TestIssueRendering:
    def test_str_contains_everything(self):
        issue = Issue("SDL001", "error", "Proc", "boom")
        text = str(issue)
        assert "SDL001" in text and "Proc" in text and "boom" in text
