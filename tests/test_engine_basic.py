"""Engine tests: immediate transactions, sequencing, spawning, termination."""

import pytest

from repro.core.actions import ABORT, EXIT, assert_tuple, let, spawn
from repro.core.constructs import guarded, repeat, select, seq
from repro.core.expressions import Var
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists, no
from repro.core.transactions import immediate
from repro.errors import EngineError, StepLimitExceeded, UnknownProcessError
from repro.runtime.engine import Engine
from repro.runtime.events import Trace


def single(body, rows=(), seed=0, defs=(), detail=False, **engine_kw):
    """Run one anonymous process with *body* over initial tuples *rows*."""
    main = ProcessDefinition("Main", body=body)
    engine = Engine(
        definitions=[main, *defs], seed=seed, trace=Trace(detail), **engine_kw
    )
    engine.assert_tuples(rows)
    engine.start("Main")
    result = engine.run()
    return engine, result


class TestSequencing:
    def test_statements_execute_in_order(self):
        a = Var("a")
        engine, result = single([
            immediate().then(assert_tuple("step", 1)),
            immediate(exists(a).match(P["step", a].retract())).then(
                assert_tuple("step", a + 1)
            ),
        ])
        assert result.completed
        assert engine.dataspace.multiset() == {("step", 2): 1}

    def test_failed_immediate_acts_as_skip(self):
        engine, result = single([
            immediate(exists().match(P["missing", ANY])).then(assert_tuple("no", 1)),
            immediate().then(assert_tuple("yes", 1)),
        ])
        assert engine.dataspace.multiset() == {("yes", 1): 1}

    def test_lets_persist_across_statements(self):
        engine, result = single([
            immediate().then(let("N", 20)),
            immediate().then(assert_tuple("x", Var("N") + 1)),
        ])
        assert ("x", 21) in engine.dataspace.multiset()

    def test_exit_terminates_behavior(self):
        engine, result = single([
            immediate().then(assert_tuple("a", 1), EXIT),
            immediate().then(assert_tuple("b", 1)),
        ])
        assert ("a", 1) in engine.dataspace.multiset()
        assert ("b", 1) not in engine.dataspace.multiset()

    def test_abort_terminates_process(self):
        engine, result = single([
            immediate().then(ABORT),
            immediate().then(assert_tuple("never", 1)),
        ])
        assert result.completed
        assert len(engine.dataspace) == 0
        finished = [e for e in engine.trace.events]  # counters-only trace
        assert engine.society.get(1).status.value == "aborted"

    def test_nested_sequence(self):
        engine, __ = single([
            seq(
                immediate().then(assert_tuple("a", 1)),
                immediate().then(assert_tuple("b", 1)),
            ),
            immediate().then(assert_tuple("c", 1)),
        ])
        assert len(engine.dataspace) == 3


class TestSpawning:
    def _worker(self):
        k = Var("k")
        return ProcessDefinition(
            "Worker", params=("k",), body=[immediate().then(assert_tuple("did", k))]
        )

    def test_spawn_runs_new_process(self):
        engine, result = single(
            [immediate().then(spawn("Worker", 7))], defs=[self._worker()]
        )
        assert ("did", 7) in engine.dataspace.multiset()
        assert engine.society.total_spawned == 2

    def test_spawn_per_match_under_forall(self):
        from repro.core.query import forall

        a = Var("a")
        engine, __ = single(
            [
                immediate(forall(a).match(P["seed", a].retract())).then(
                    spawn("Worker", a)
                )
            ],
            rows=[("seed", i) for i in range(4)],
            defs=[self._worker()],
        )
        assert engine.dataspace.count_matching(P["did", ANY]) == 4

    def test_unknown_process_raises(self):
        with pytest.raises(UnknownProcessError):
            single([immediate().then(spawn("Ghost"))])

    def test_tuples_survive_creator_termination(self):
        # "tuples ... can survive the termination of the creating process"
        engine, __ = single(
            [immediate().then(spawn("Worker", 1))], defs=[self._worker()]
        )
        assert engine.society.get(1).status.value == "terminated"
        assert ("did", 1) in engine.dataspace.multiset()

    def test_owner_recorded_on_spawned_asserts(self):
        engine, __ = single(
            [immediate().then(spawn("Worker", 1))], defs=[self._worker()]
        )
        inst = engine.dataspace.find_matching(P["did", 1])[0]
        assert inst.owner == 2  # the worker's pid, not the spawner's


class TestLimitsAndDeterminism:
    def test_step_limit_raises(self):
        a = Var("a")
        looper = [
            repeat(
                guarded(
                    immediate(exists(a).match(P["x", a].retract())).then(
                        assert_tuple("x", a + 1)
                    )
                )
            )
        ]
        with pytest.raises(StepLimitExceeded):
            single(looper, rows=[("x", 0)], seed=1)

    def test_same_seed_same_run(self):
        a = Var("a")
        body = lambda: [
            immediate(exists(a).match(P["pick", a].retract())).then(
                assert_tuple("chose", a)
            )
        ]
        rows = [("pick", i) for i in range(20)]
        e1, __ = single(body(), rows=rows, seed=5)
        e2, __ = single(body(), rows=rows, seed=5)
        assert e1.dataspace.snapshot() == e2.dataspace.snapshot()

    def test_different_seeds_can_differ(self):
        a = Var("a")
        chosen = set()
        for seed in range(30):
            body = [
                immediate(exists(a).match(P["pick", a].retract())).then(
                    assert_tuple("chose", a)
                )
            ]
            engine, __ = single(body, rows=[("pick", i) for i in range(10)], seed=seed)
            chosen.add(engine.dataspace.find_matching(P["chose", ANY])[0].values[1])
        assert len(chosen) > 2

    def test_bad_policy_rejected(self):
        with pytest.raises(EngineError):
            Engine(policy="lifo")

    def test_fifo_policy_runs(self):
        engine, result = single(
            [immediate().then(assert_tuple("x", 1))], policy="fifo"
        )
        assert result.completed

    def test_run_result_fields(self):
        engine, result = single([immediate().then(assert_tuple("x", 1))])
        assert result.completed
        assert result.steps >= 1
        assert result.rounds >= 1
        assert result.commits == 1
        assert result.dataspace_size == 1
        assert result.live_processes == 0


class TestRepetitionAndSelection:
    def test_repetition_drains_tuples(self):
        a = Var("a")
        engine, __ = single(
            [
                repeat(
                    guarded(
                        immediate(exists(a).match(P["n", a].retract())).then(
                            assert_tuple("done", a)
                        )
                    )
                )
            ],
            rows=[("n", i) for i in range(5)],
        )
        assert engine.dataspace.count_matching(P["done", ANY]) == 5
        assert engine.dataspace.count_matching(P["n", ANY]) == 0

    def test_repetition_exit_action(self):
        a = Var("a")
        engine, __ = single(
            [
                repeat(
                    guarded(
                        immediate(exists(a).match(P["n", a].retract()).such_that(a == 3))
                        .then(EXIT)
                    ),
                    guarded(
                        immediate(exists(a).match(P["n", a].retract())).then(
                            assert_tuple("done", a)
                        )
                    ),
                ),
                immediate().then(assert_tuple("after", 1)),
            ],
            rows=[("n", i) for i in range(5)],
            seed=3,
        )
        # the exit fired at n=3; the repetition ended but the process continued
        assert ("after", 1) in engine.dataspace.multiset()

    def test_selection_picks_exactly_one(self):
        engine, __ = single(
            [
                select(
                    guarded(immediate().then(assert_tuple("left", 1))),
                    guarded(immediate().then(assert_tuple("right", 1))),
                )
            ],
            seed=2,
        )
        assert len(engine.dataspace) == 1

    def test_selection_failure_is_skip(self):
        engine, result = single(
            [
                select(
                    guarded(immediate(exists().match(P["no", ANY])).then(assert_tuple("a", 1))),
                ),
                immediate().then(assert_tuple("b", 1)),
            ]
        )
        assert engine.dataspace.multiset() == {("b", 1): 1}

    def test_selection_branch_body_runs(self):
        engine, __ = single(
            [
                select(
                    guarded(
                        immediate().then(assert_tuple("guard", 1)),
                        immediate().then(assert_tuple("body", 1)),
                    ),
                )
            ]
        )
        assert engine.dataspace.count_matching(P["body", 1]) == 1

    def test_arbitrary_branch_choice_across_seeds(self):
        sides = set()
        for seed in range(20):
            engine, __ = single(
                [
                    select(
                        guarded(immediate().then(assert_tuple("left", 1))),
                        guarded(immediate().then(assert_tuple("right", 1))),
                    )
                ],
                seed=seed,
            )
            sides.add(next(iter(engine.dataspace.multiset()))[0])
        assert sides == {"left", "right"}
