"""Unit tests for the cost-based query planner (repro.core.plan)."""

import random

import pytest

from repro.core.dataspace import Dataspace
from repro.core.matching import iter_joint_matches
from repro.core.patterns import ANY, P
from repro.core.plan import (
    CompiledPattern,
    QueryPlanner,
    build_plan,
    compile_pattern,
    resolve_plan_mode,
)
from repro.core.query import Membership, exists, forall
from repro.core.views import FULL_VIEW, View, import_rule
from repro.errors import EngineError, UnboundVariableError
from repro.programs.summation import run_sum2, sum2_definition
from repro.runtime.engine import Engine


def canonical(matches):
    """Order-insensitive form of an iter_joint_matches result set."""
    return sorted(
        (tuple(sorted(b.items())), tuple(sorted(i.tid for i in insts)))
        for b, insts in matches
    )


def planner_window(ds):
    window = FULL_VIEW.window(ds)
    window.planner = QueryPlanner(ds)
    return window


# ----------------------------------------------------------------------
# pattern compilation
# ----------------------------------------------------------------------
class TestCompiledPattern:
    def test_field_roles_split(self, abc):
        a, b, _ = abc
        pat = P["year", a, ANY, a + b, a]
        compiled = compile_pattern(pat)
        assert compiled.arity == 5
        assert compiled.static_probes == ((0, "year"),)
        assert [pos for pos, __, __ in compiled.expr_slots] == [3]
        assert compiled.var_slots == ((1, "a"), (4, "a"))
        assert compiled.binding_names == frozenset({"a"})
        assert compiled.expr_free == frozenset({"a", "b"})
        assert compiled.free_names == frozenset({"a", "b"})

    def test_memoised_on_pattern(self, abc):
        a, _, _ = abc
        pat = P["year", a]
        first = compile_pattern(pat)
        assert compile_pattern(pat) is first
        assert isinstance(pat._compiled, CompiledPattern)

    def test_atom_constants_are_static(self):
        compiled = compile_pattern(P["k", 7, ANY])
        assert compiled.static_probes == ((0, "k"), (1, 7))
        assert compiled.expr_slots == ()
        assert compiled.var_slots == ()


class TestPlanStep:
    def test_bound_variable_becomes_probe(self, abc):
        a, b, _ = abc
        plan = build_plan([P["e", a, b]], frozenset({"a"}), {"a": 1}, Dataspace())
        (step,) = plan.steps
        assert step.probe_vars == ((1, "a"),)
        assert step.binders == ((2, "b"),)
        assert step.repeat_checks == ()

    def test_repeated_variable_checked_once(self, abc):
        a, _, _ = abc
        plan = build_plan([P["e", a, a]], frozenset(), {}, Dataspace())
        (step,) = plan.steps
        assert step.binders == ((1, "a"),)
        assert step.repeat_checks == ((2, 1),)

    def test_probes_include_evaluated_exprs(self, abc):
        a, _, _ = abc
        plan = build_plan([P["e", a + 1]], frozenset({"a"}), {"a": 1}, Dataspace())
        (step,) = plan.steps
        assert step.probes_for({"a": 4}) == [(0, "e"), (1, 5)]


# ----------------------------------------------------------------------
# selectivity ordering
# ----------------------------------------------------------------------
class TestBuildPlan:
    def test_narrow_bucket_goes_first(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        ds.insert_many([("wide", i) for i in range(50)])
        ds.insert(("narrow", 7))
        plan = build_plan([P["wide", a], P["narrow", a]], frozenset(), {}, ds)
        assert plan.order == (1, 0)

    def test_textual_order_on_ties(self, abc):
        a, b, _ = abc
        ds = Dataspace()
        ds.insert_many([("t", i) for i in range(4)])
        plan = build_plan([P["t", a], P["t", b]], frozenset(), {}, ds)
        assert plan.order == (0, 1)

    def test_expr_dependency_is_a_hard_constraint(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        # The expr atom's bucket is tiny, but it reads ``a`` which only the
        # (much wider) binder atom produces — it must still come second.
        ds.insert(("sq", 4))
        ds.insert_many([("n", i) for i in range(30)])
        plan = build_plan([P["n", a], P["sq", a * a]], frozenset(), {}, ds)
        assert plan.order == (0, 1)

    def test_bound_value_probes_measure_buckets(self, abc):
        a, b, _ = abc
        ds = Dataspace()
        ds.insert_many([("x", 1, i) for i in range(20)])
        ds.insert_many([("y", 1, i) for i in range(2)])
        plan = build_plan(
            [P["x", a, b], P["y", a, ANY]], frozenset({"a"}), {"a": 1}, ds
        )
        assert plan.order == (1, 0)


# ----------------------------------------------------------------------
# probed candidate fetch
# ----------------------------------------------------------------------
class TestCandidatesProbed:
    def test_intersects_all_probes(self):
        ds = Dataspace()
        ds.insert_many([("r", i % 3, i % 5) for i in range(60)])
        got = ds.candidates_probed(3, [(0, "r"), (1, 1), (2, 2)])
        assert got and all(
            inst.values[1] == 1 and inst.values[2] == 2 for inst in got
        )
        want = [
            inst for inst in ds.instances()
            if inst.values[1] == 1 and inst.values[2] == 2
        ]
        assert {i.tid for i in got} == {i.tid for i in want}

    def test_empty_bucket_short_circuits(self):
        ds = Dataspace()
        ds.insert(("r", 1))
        assert ds.candidates_probed(2, [(0, "r"), (1, 99)]) == []

    def test_no_probes_scans_arity(self):
        ds = Dataspace()
        ds.insert(("a", 1))
        ds.insert(("b", 2))
        ds.insert(("c",))
        assert len(ds.candidates_probed(2, [])) == 2

    def test_unindexed_filters_directly(self):
        ds = Dataspace(indexed=False)
        ds.insert_many([("r", i % 3) for i in range(9)])
        got = ds.candidates_probed(2, [(1, 1)])
        assert len(got) == 3 and all(inst.values[1] == 1 for inst in got)

    def test_window_filters_imports(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        ds.insert_many([("year", y) for y in (85, 87, 88, 90)])
        view = View(imports=[import_rule("year", a, guard=(a <= 87))])
        window = view.window(ds)
        got = window.candidates_probed(2, [(0, "year")])
        assert sorted(inst.values[1] for inst in got) == [85, 87]


# ----------------------------------------------------------------------
# the planned join
# ----------------------------------------------------------------------
class TestPlannerJoin:
    def test_same_match_set_as_naive(self, abc):
        a, b, _ = abc
        ds = Dataspace()
        ds.insert_many([("edge", i, i + 1) for i in range(10)])
        ds.insert_many([("mark", i) for i in range(0, 10, 2)])
        patterns = [P["edge", a, b], P["mark", a]]
        naive = canonical(iter_joint_matches(ds, patterns, {}))
        planned = canonical(QueryPlanner(ds).iter_matches(ds, patterns, {}))
        assert planned == naive and naive

    def test_instances_keep_textual_alignment(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        ds.insert_many([("wide", i) for i in range(10)])
        ds.insert(("narrow", 3))
        planner = QueryPlanner(ds)
        patterns = [P["wide", a], P["narrow", a]]
        ((bindings, insts),) = list(planner.iter_matches(ds, patterns, {}))
        # the plan runs narrow first, but the yielded list follows atom order
        assert insts[0].values == ("wide", 3)
        assert insts[1].values == ("narrow", 3)
        assert bindings["a"] == 3

    def test_repeat_variable_equality(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        ds.insert(("p", 1, 1))
        ds.insert(("p", 1, 2))
        got = list(QueryPlanner(ds).iter_matches(ds, [P["p", a, a]], {}))
        assert len(got) == 1 and got[0][0]["a"] == 1

    def test_excluded_is_consulted_live(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        insts = ds.insert_many([("n", i) for i in range(4)])
        excluded: set = set()
        seen = []
        for bindings, (inst,) in QueryPlanner(ds).iter_matches(
            ds, [P["n", a]], {}, None, excluded
        ):
            seen.append(bindings["a"])
            # excluding another instance mid-enumeration suppresses it
            excluded.add(insts[(bindings["a"] + 1) % 4].tid)
        assert len(seen) == 2

    def test_unbound_expr_raises_like_naive(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        ds.insert(("n", 1))
        with pytest.raises(UnboundVariableError):
            list(QueryPlanner(ds).iter_matches(ds, [P["n", a + 1]], {}))

    def test_seeded_determinism(self, abc):
        a, b, _ = abc
        ds = Dataspace()
        ds.insert_many([("e", i, i % 3) for i in range(12)])
        patterns = [P["e", a, b], P["e", ANY, b]]
        planner = QueryPlanner(ds)
        one = next(iter(planner.iter_matches(ds, patterns, {}, random.Random(5))))
        two = next(iter(planner.iter_matches(ds, patterns, {}, random.Random(5))))
        assert one[0] == two[0]
        assert [i.tid for i in one[1]] == [i.tid for i in two[1]]


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_hit_after_miss(self, abc):
        a, _, _ = abc
        planner = QueryPlanner(Dataspace())
        patterns = (P["n", a],)
        first = planner.plan_for(patterns, {})
        second = planner.plan_for(patterns, {})
        assert first is second
        assert (planner.hits, planner.misses) == (1, 1)
        assert planner.hit_rate == 0.5

    def test_bound_set_keys_distinct_plans(self, abc):
        a, _, _ = abc
        planner = QueryPlanner(Dataspace())
        patterns = (P["n", a],)
        unbound = planner.plan_for(patterns, {})
        bound = planner.plan_for(patterns, {"a": 1})
        assert unbound is not bound
        assert planner.misses == 2

    def test_irrelevant_bindings_share_a_plan(self, abc):
        a, _, _ = abc
        planner = QueryPlanner(Dataspace())
        patterns = (P["n", a],)
        assert planner.plan_for(patterns, {"zzz": 9}) is planner.plan_for(
            patterns, {"other": 1, "unrelated": 2}
        )

    def test_distinct_pattern_tuples_distinct_entries(self, abc):
        a, _, _ = abc
        planner = QueryPlanner(Dataspace())
        planner.plan_for((P["n", a],), {})
        planner.plan_for((P["m", a],), {})
        assert planner.cache_size == 2


# ----------------------------------------------------------------------
# engine wiring
# ----------------------------------------------------------------------
class TestEngineWiring:
    def test_resolve_plan_mode(self):
        assert resolve_plan_mode(None, None) == "on"
        assert resolve_plan_mode(None, "off") == "off"
        assert resolve_plan_mode("off", "on") == "off"
        assert resolve_plan_mode(True, "off") == "on"
        assert resolve_plan_mode(False, None) == "off"
        with pytest.raises(ValueError):
            resolve_plan_mode("sideways", None)

    def test_engine_rejects_unknown_mode(self):
        with pytest.raises(EngineError):
            Engine(plan="sideways")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("SDL_PLAN", "off")
        assert Engine().planner is None
        monkeypatch.delenv("SDL_PLAN")
        assert Engine().planner is not None

    def test_windows_carry_the_planner(self):
        # plan="on" explicitly: this must hold under the SDL_PLAN=off sweep
        engine = Engine(definitions=[sum2_definition()], plan="on")
        proc = engine.start("Sum2", (0, 1))
        assert engine.planner is not None
        assert engine.window(proc).planner is engine.planner
        off = Engine(definitions=[sum2_definition()], plan="off")
        proc = off.start("Sum2", (0, 1))
        assert off.planner is None and off.window(proc).planner is None

    def test_bare_window_stays_naive(self, year_space):
        assert FULL_VIEW.window(year_space).planner is None

    def test_run_result_counters(self):
        run = run_sum2(list(range(8)), seed=1, plan="on")
        assert run.result.plan_misses >= 1
        assert run.result.plan_hits >= 1
        assert 0.0 < run.result.plan_hit_rate <= 1.0
        off = run_sum2(list(range(8)), seed=1, plan="off")
        assert (off.result.plan_hits, off.result.plan_misses) == (0, 0)
        assert off.result.plan_hit_rate == 0.0
        assert off.total == run.total

    def test_planner_obs_counters(self):
        run = run_sum2(list(range(8)), seed=1, obs=True, plan="on")
        data = run.result.metrics["sdl_plan_cache_total"]["data"]
        assert data["result=miss"] >= 1
        assert data["result=hit"] >= 1
        assert run.result.metrics["sdl_plan_seconds"]["data"]["count"] == data[
            "result=miss"
        ]
        assert run.result.metrics["sdl_plan_cache_size"]["data"] >= 1


# ----------------------------------------------------------------------
# FORALL resume + query-level parity
# ----------------------------------------------------------------------
class TestQueryEvaluation:
    def test_forall_retraction_greedy_maximal(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        ds.insert_many([("job", i) for i in range(9)])
        window = planner_window(ds)
        q = forall(a).match(P["job", a].retract()).build()
        result = q.evaluate(window, {}, random.Random(3))
        assert result.success and len(result.matches) == 9
        assert {m.bindings["a"] for m in result.matches} == set(range(9))

    def test_forall_pairing_excludes_consumed(self, abc):
        # ∀ pairing: each match retracts two instances; 6 instances make 3
        # matches whichever order the seed visits them in.
        a, b, _ = abc
        ds = Dataspace()
        ds.insert_many([("t", i) for i in range(6)])
        for seed in range(6):
            window = planner_window(ds)
            q = (
                forall(a, b)
                .match(P["t", a].retract(), P["t", b].retract())
                .build()
            )
            result = q.evaluate(window, {}, random.Random(seed))
            assert result.success
            assert len(result.matches) == 3
            used = [i.tid for m in result.matches for i in m.retracted]
            assert len(used) == len(set(used)) == 6

    def test_exists_planner_verdict_matches_naive(self, abc):
        a, b, _ = abc
        ds = Dataspace()
        ds.insert_many([("p", i, i + 1) for i in range(5)])
        q = exists(a, b).match(P["p", a, b], P["p", b, ANY]).build()
        on = q.evaluate(planner_window(ds), {}, random.Random(0))
        off = q.evaluate(FULL_VIEW.window(ds), {}, random.Random(0))
        assert on.success == off.success is True

    def test_membership_uses_planner(self, abc):
        a, _, _ = abc
        ds = Dataspace()
        ds.insert(("flag", 1))
        window = planner_window(ds)
        q = exists().such_that(Membership(P["flag", a])).build()
        assert q.evaluate(window, {}, random.Random(0)).success
        assert window.planner.misses >= 1  # the membership atom got planned


# ----------------------------------------------------------------------
# satellite fast paths
# ----------------------------------------------------------------------
class TestDataspaceFastPaths:
    def test_count_find_agree_with_slow_path(self, year_space, abc):
        a, _, _ = abc
        assert year_space.count_matching(P["year", ANY]) == 4
        assert year_space.count_matching(P["year", a], {"a": 87}) == 1
        assert year_space.count_matching(P["year", a]) == 4
        found = year_space.find_matching(P["year", 88])
        assert [i.values for i in found] == [("year", 88)]

    def test_fast_path_does_not_leak_bindings(self, year_space, abc):
        a, _, _ = abc
        bound = {"a": 87}
        assert year_space.count_matching(P["year", a], bound) == 1
        assert bound == {"a": 87}

    def test_binding_pattern_still_isolated(self, year_space, abc):
        a, _, _ = abc
        # binding patterns keep the per-candidate copy (purity property)
        assert len(year_space.find_matching(P["year", a])) == 4


class TestListenerSnapshot:
    def test_snapshot_invalidation(self, space):
        seen = []
        unsub = space.subscribe(lambda ch: seen.append(("one", ch.version)))
        space.insert(("a",))
        space.insert(("b",))
        space.subscribe(lambda ch: seen.append(("two", ch.version)))
        space.insert(("c",))
        unsub()
        space.insert(("d",))
        assert seen == [
            ("one", 1),
            ("one", 2),
            ("one", 3),
            ("two", 3),
            ("two", 4),
        ]

    def test_unsubscribe_idempotent(self, space):
        unsub = space.subscribe(lambda ch: None)
        unsub()
        unsub()
        assert space.listener_count == 0
        space.insert(("a",))  # must not notify anyone / crash
