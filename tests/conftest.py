"""Shared fixtures for the SDL reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.dataspace import Dataspace
from repro.core.expressions import variables


@pytest.fixture
def space() -> Dataspace:
    """An empty dataspace."""
    return Dataspace()


@pytest.fixture
def year_space() -> Dataspace:
    """The paper's running example: a few <year, n> tuples."""
    ds = Dataspace()
    ds.insert_many([("year", y) for y in (85, 87, 88, 90)])
    return ds


@pytest.fixture
def abc():
    """Three fresh variables, the workhorse of query tests."""
    return variables("a b c")
