"""Shared fixtures for the SDL reproduction test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.core.dataspace import Dataspace
from repro.core.expressions import variables

# Hypothesis profiles: most property tests pin ``max_examples`` in their
# own ``@settings`` (the pin wins over any profile), but the chaos suite
# (test_chaos_properties.py) deliberately leaves it unpinned so CI can
# scale it up with ``--hypothesis-profile=ci`` while local runs stay fast.
settings.register_profile("dev", max_examples=15, deadline=None)
settings.register_profile("ci", max_examples=60, deadline=None)


def pytest_configure(config):
    if not config.getoption("--hypothesis-profile", default=None):
        settings.load_profile("dev")


@pytest.fixture
def space() -> Dataspace:
    """An empty dataspace."""
    return Dataspace()


@pytest.fixture
def year_space() -> Dataspace:
    """The paper's running example: a few <year, n> tuples."""
    ds = Dataspace()
    ds.insert_many([("year", y) for y in (85, 87, 88, 90)])
    return ds


@pytest.fixture
def abc():
    """Three fresh variables, the workhorse of query tests."""
    return variables("a b c")
