"""Unit tests for the traditional-model baselines (repro.baselines)."""

import pytest

from repro.baselines import ActorNetwork, MessageSummer, SharedArraySummer
from repro.errors import DeadlockError
from repro.workloads import random_array


class TestSharedArray:
    def test_computes_sum(self):
        values = random_array(64, seed=1)
        summer = SharedArraySummer(values)
        assert summer.run() == sum(values)

    def test_phase_structure(self):
        summer = SharedArraySummer([1] * 16)
        summer.run()
        assert summer.phases == 4  # log2(16)
        assert summer.barriers == 4
        assert summer.adds == 15  # N - 1
        assert summer.work_per_phase == [8, 4, 2, 1]

    def test_single_element(self):
        summer = SharedArraySummer([42])
        assert summer.run() == 42
        assert summer.phases == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            SharedArraySummer([1, 2, 3])


class TestActorNetwork:
    def test_message_delivery(self):
        net = ActorNetwork(seed=1)
        log = []
        net.actor("a", lambda n, name, msg: log.append(msg))
        net.send("a", "hello")
        net.run()
        assert log == ["hello"]

    def test_duplicate_actor_rejected(self):
        net = ActorNetwork(seed=1)
        net.actor("a", lambda n, name, msg: None)
        with pytest.raises(ValueError):
            net.actor("a", lambda n, name, msg: None)

    def test_send_to_finished_actor_rejected(self):
        net = ActorNetwork(seed=1)
        net.actor("a", lambda n, name, msg: None)
        net.finish("a")
        with pytest.raises(DeadlockError):
            net.send("a", 1)

    def test_round_counting(self):
        net = ActorNetwork(seed=1)
        net.actor("relay", lambda n, name, msg: n.send("sink", msg) if msg else None)
        net.actor("sink", lambda n, name, msg: None)
        net.send("relay", 1)
        net.run()
        assert net.rounds == 2  # relay round, then sink round
        assert net.deliveries == 2


class TestMessageSummer:
    @pytest.mark.parametrize("n", [2, 4, 16, 128])
    def test_computes_sum(self, n):
        values = random_array(n, seed=n)
        summer = MessageSummer(values, seed=1)
        assert summer.run() == sum(values)

    def test_message_count_linear(self):
        n = 32
        summer = MessageSummer([1] * n, seed=2)
        summer.run()
        # N leaf injections + one forward from every internal actor except
        # the root: N + (N - 1) - 1 = 2N - 2
        assert summer.network.messages_sent == 2 * n - 2

    def test_rounds_logarithmic(self):
        summer = MessageSummer([1] * 64, seed=2)
        summer.run()
        assert summer.network.rounds <= 16  # ~2*log2(64), far below N

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            MessageSummer([1, 2, 3])
        with pytest.raises(ValueError):
            MessageSummer([1])
