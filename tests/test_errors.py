"""Tests for the exception hierarchy (repro.errors)."""


from repro import errors


class TestHierarchy:
    def test_everything_is_sdlerror(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.SDLError), name

    def test_dual_inheritance_for_catchability(self):
        # library errors should also be catchable as their natural builtin
        assert issubclass(errors.ValueDomainError, TypeError)
        assert issubclass(errors.ArityError, ValueError)
        assert issubclass(errors.UnboundVariableError, NameError)
        assert issubclass(errors.ParseError, SyntaxError)
        assert issubclass(errors.ExportViolation, PermissionError)
        assert issubclass(errors.DeadlockError, RuntimeError)

    def test_unknown_process_is_process_error(self):
        assert issubclass(errors.UnknownProcessError, errors.ProcessError)


class TestMessages:
    def test_unbound_variable_names_the_variable(self):
        err = errors.UnboundVariableError("alpha")
        assert "alpha" in str(err)
        assert err.name == "alpha"

    def test_rebind_names_the_variable(self):
        assert "x" in str(errors.RebindError("x"))

    def test_export_violation_carries_payload(self):
        err = errors.ExportViolation("Sorter", ("secret", 1))
        assert "Sorter" in str(err)
        assert err.values == ("secret", 1)

    def test_deadlock_lists_blocked(self):
        err = errors.DeadlockError(["A#1", "B#2"])
        assert "A#1" in str(err) and "B#2" in str(err)
        assert err.blocked == ["A#1", "B#2"]

    def test_step_limit_mentions_limit(self):
        err = errors.StepLimitExceeded(500)
        assert "500" in str(err)
        assert err.limit == 500

    def test_parse_error_carries_position(self):
        err = errors.ParseError("bad token", 3, 7)
        assert "line 3" in str(err)
        assert (err.line, err.column) == (3, 7)

    def test_unknown_process_names_target(self):
        err = errors.UnknownProcessError("Ghost")
        assert "Ghost" in str(err)
