"""Tests for the ``python -m repro`` command-line runner."""

import pytest

from repro.__main__ import _load_tuples, _parse_start, _parse_value, main
from repro.core.values import Atom
from repro.errors import SDLError

PROGRAM = """
process Harvest()
behavior
  *[ exists a : <year, a>^ : a > 87 -> (found, a) ]
end

process Main(k)
behavior
  -> (started, k) ;
  -> Harvest()
end
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.sdl"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def data_file(tmp_path):
    path = tmp_path / "data.txt"
    path.write_text(
        "# initial dataspace\n"
        "year, 85\n"
        "year, 88\n"
        "\n"
        'item, "hello world", 2.5, true\n'
    )
    return str(path)


class TestValueParsing:
    def test_scalars(self):
        assert _parse_value("42") == 42
        assert _parse_value("2.5") == 2.5
        assert _parse_value("true") is True
        assert _parse_value("false") is False
        assert _parse_value('"x y"') == "x y"
        assert _parse_value("nil") == Atom("nil")

    def test_empty_rejected(self):
        with pytest.raises(SDLError):
            _parse_value("  ")

    def test_load_tuples(self, data_file):
        rows = _load_tuples(data_file)
        assert rows == [
            (Atom("year"), 85),
            (Atom("year"), 88),
            (Atom("item"), "hello world", 2.5, True),
        ]

    def test_parse_start(self):
        assert _parse_start("Main") == ("Main", ())
        assert _parse_start("Worker(1, x)") == ("Worker", (1, Atom("x")))
        assert _parse_start("NoArgs()") == ("NoArgs", ())
        with pytest.raises(SDLError):
            _parse_start("Broken(1")


class TestCommands:
    def test_check(self, program_file, capsys):
        assert main(["check", program_file]) == 0
        out = capsys.readouterr().out
        assert "Harvest" in out and "Main" in out

    def test_check_bad_program(self, tmp_path, capsys):
        bad = tmp_path / "bad.sdl"
        bad.write_text("process Broken( behavior end")
        assert main(["check", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_pretty_is_recompilable(self, program_file, capsys, tmp_path):
        assert main(["pretty", program_file]) == 0
        text = capsys.readouterr().out
        again = tmp_path / "again.sdl"
        again.write_text(text)
        assert main(["check", str(again)]) == 0

    def test_run(self, program_file, data_file, capsys):
        code = main(
            ["run", program_file, "--start", "Main(7)", "--data", data_file, "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "completed" in out
        assert "<found,88>" in out
        assert "<started,7>" in out

    def test_run_requires_start(self, program_file, capsys):
        assert main(["run", program_file]) == 2

    def test_run_trace_and_profile(self, program_file, data_file, capsys):
        code = main(
            [
                "run", program_file,
                "--start", "Main(1)",
                "--data", data_file,
                "--trace", "--profile",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "commit" in out
        assert "commits per virtual round" in out

    def test_run_deadlock_exit_code(self, tmp_path, capsys):
        stuck = tmp_path / "stuck.sdl"
        stuck.write_text(
            "process Stuck() behavior <never, *> => skip end"
        )
        code = main(["run", str(stuck), "--start", "Stuck"])
        out = capsys.readouterr().out
        assert code == 1
        assert "deadlock" in out

    def test_missing_file(self, capsys):
        assert main(["check", "/no/such/file.sdl"]) == 2


class TestFailureFlags:
    def test_run_commit_and_validate(self, program_file, data_file, capsys):
        code = main(
            [
                "run", program_file,
                "--start", "Main(7)",
                "--data", data_file,
                "--commit", "group",
                "--validate", "serial",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "completed" in out
        assert "<found,88>" in out

    def test_run_faults_crash_summary(self, program_file, data_file, capsys):
        code = main(
            [
                "run", program_file,
                "--start", "Main(7)",
                "--data", data_file,
                "--faults", "pre-commit:crash:name=Main:at=1:max=1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "crashed" in out
        assert "1 crashes, 0 restarts" in out
        # crash-stop atomicity: Main never committed its first assert
        assert "<started,7>" not in out

    def test_run_bad_fault_plan_exits_2(self, program_file, capsys):
        code = main(
            [
                "run", program_file,
                "--start", "Main(1)",
                "--faults", "pre-commit:explode",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_run_bad_commit_mode_rejected(self, program_file, capsys):
        with pytest.raises(SystemExit):
            main(["run", program_file, "--start", "Main(1)", "--commit", "bogus"])
