"""Integration tests: the Section 3.2 property-list programs."""

import pytest

from repro.core.values import Atom
from repro.programs import run_find, run_search, run_sort
from repro.programs.plist import NOT_FOUND
from repro.workloads import property_list_rows, random_property_list


@pytest.fixture(scope="module")
def rows():
    return random_property_list(12, seed=7)


class TestSearch:
    def test_finds_value(self, rows):
        target = rows[8][1]
        out = run_search(rows, target, seed=1)
        assert out.answer == f"value-of-{target}"

    def test_miss_reports_not_found(self, rows):
        out = run_search(rows, Atom("missing_prop"), seed=1)
        assert out.answer == NOT_FOUND

    def test_spawns_one_process_per_visited_node(self, rows):
        # property at chain position p -> p+1 processes (0..p)
        target = rows[0][1]  # head of the chain
        out = run_search(rows, target, seed=1)
        assert out.trace.counters.processes_created == 1
        last = rows[-1][1]
        out2 = run_search(rows, last, seed=1)
        assert out2.trace.counters.processes_created == len(rows)

    def test_miss_walks_whole_chain(self, rows):
        out = run_search(rows, Atom("missing_prop"), seed=1)
        assert out.trace.counters.processes_created == len(rows)

    def test_first_property_found_at_head(self):
        rows = property_list_rows([("only", 99)])
        out = run_search(rows, Atom("only"), seed=1)
        assert out.answer == 99


class TestFind:
    def test_finds_value_in_one_process(self, rows):
        target = rows[8][1]
        out = run_find(rows, target, seed=1)
        assert out.answer == f"value-of-{target}"
        assert out.trace.counters.processes_created == 1

    def test_transaction_count_constant(self, rows):
        # content addressing: one committed transaction regardless of position
        for idx in (0, 5, 11):
            out = run_find(rows, rows[idx][1], seed=1)
            assert out.result.commits == 1

    def test_miss(self, rows):
        out = run_find(rows, Atom("missing_prop"), seed=1)
        assert out.answer == NOT_FOUND


class TestSort:
    @pytest.mark.parametrize("length", [1, 2, 3, 8, 16])
    def test_sorts_by_name(self, length):
        rows = random_property_list(length, seed=length)
        out = run_sort(rows, seed=2)
        assert out.answer == sorted(str(r[1]) for r in rows)

    def test_chain_structure_preserved(self, rows):
        out = run_sort(rows, seed=2)
        final_rows = [i.values for i in out.engine.dataspace.instances()]
        # same node ids, same next pointers
        assert sorted(r[0] for r in final_rows) == sorted(r[0] for r in rows)
        assert sorted(str(r[3]) for r in final_rows) == sorted(str(r[3]) for r in rows)

    def test_values_travel_with_names(self, rows):
        out = run_sort(rows, seed=2)
        final_rows = [i.values for i in out.engine.dataspace.instances()]
        pairs = {(str(r[1]), r[2]) for r in final_rows}
        assert pairs == {(str(r[1]), r[2]) for r in rows}

    def test_termination_via_single_consensus(self, rows):
        out = run_sort(rows, seed=2)
        assert out.result.consensus_rounds == 1

    def test_already_sorted_list_needs_no_swaps(self):
        rows = property_list_rows([("a", 1), ("b", 2), ("c", 3)])
        out = run_sort(rows, seed=2, detail=True)
        from repro.runtime.events import TxnCommitted

        swaps = [e for e in out.trace.of_kind(TxnCommitted) if e.label == "swap"]
        assert swaps == []

    def test_reverse_sorted_list(self):
        rows = property_list_rows([("d", 4), ("c", 3), ("b", 2), ("a", 1)])
        out = run_sort(rows, seed=2)
        assert out.answer == ["a", "b", "c", "d"]

    def test_different_seeds_same_result(self, rows):
        expected = sorted(str(r[1]) for r in rows)
        for seed in range(4):
            assert run_sort(rows, seed=seed).answer == expected
