"""Checkpoint/replay recovery: fidelity, journal gaps, engine wiring."""

import pytest

from repro.core.dataspace import JOURNAL_DEPTH, Dataspace
from repro.errors import RecoveryError
from repro.runtime import Checkpoint, Engine, RecoveryLog
from repro.runtime.events import CheckpointTaken, Trace


def signature(space):
    return sorted((inst.values, inst.tid.owner) for inst in space.instances())


class TestConstruction:
    @pytest.mark.parametrize("interval", [0, -1, JOURNAL_DEPTH + 1])
    def test_bad_interval_rejected(self, interval, space):
        with pytest.raises(RecoveryError):
            RecoveryLog(space, interval=interval)

    def test_bad_keep_rejected(self, space):
        with pytest.raises(RecoveryError):
            RecoveryLog(space, keep=0)

    def test_baseline_checkpoint_captures_preloaded_state(self, year_space):
        log = RecoveryLog(year_space, interval=64)
        assert log.checkpoints_taken == 1
        assert log.latest.size == 4
        assert log.latest.version == year_space.version

    def test_engine_rejects_bad_interval(self):
        from repro.errors import EngineError

        with pytest.raises((EngineError, RecoveryError)):
            Engine(definitions=[], checkpoint_interval=0)


class TestCheckpointing:
    def test_captures_every_interval(self, space):
        log = RecoveryLog(space, interval=3)
        for i in range(7):
            space.insert(("t", i))
        # baseline + after changes 3 and 6
        assert log.checkpoints_taken == 3

    def test_keep_prunes_old_checkpoints(self, space):
        log = RecoveryLog(space, interval=1, keep=2)
        for i in range(5):
            space.insert(("t", i))
        assert log.checkpoints_taken == 6
        assert len(log.checkpoints) == 2
        assert log.latest.version == space.version

    def test_close_stops_capture_and_is_idempotent(self, space):
        log = RecoveryLog(space, interval=1)
        space.insert(("t", 0))
        taken = log.checkpoints_taken
        log.close()
        log.close()
        space.insert(("t", 1))
        assert log.checkpoints_taken == taken


class TestReplay:
    def test_recover_replays_asserts_and_retracts(self, space):
        first = space.insert(("keep", 1))
        log = RecoveryLog(space, interval=JOURNAL_DEPTH)
        doomed = space.insert(("gone", 2))
        space.insert(("late", 3))
        space.retract(doomed.tid)
        space.retract(first.tid)
        scratch = log.recover()
        assert log.replayed == 4
        assert signature(scratch) == signature(space)
        assert signature(scratch) == [(("late", 3), 0)]

    def test_recover_from_explicit_older_checkpoint(self, space):
        log = RecoveryLog(space, interval=2, keep=4)
        for i in range(6):
            space.insert(("t", i))
        oldest = log.checkpoints[0]
        scratch = log.recover(oldest)
        assert signature(scratch) == signature(space)
        assert log.replayed > log.interval  # replayed past newer checkpoints

    def test_verify_passes_on_faithful_replay(self, year_space):
        log = RecoveryLog(year_space, interval=8)
        year_space.insert(("year", 91))
        scratch = log.verify()
        assert signature(scratch) == signature(year_space)

    def test_verify_reports_divergence(self, space):
        log = RecoveryLog(space, interval=JOURNAL_DEPTH)
        space.insert(("t", 1))
        # Sabotage the baseline: pretend the checkpoint held a phantom tuple.
        phantom = Dataspace().insert(("phantom", 0))
        log.checkpoints[0] = Checkpoint(
            version=log.checkpoints[0].version,
            instances=log.checkpoints[0].instances + (phantom,),
        )
        with pytest.raises(RecoveryError, match="diverges"):
            log.verify()

    def test_journal_gap_raises(self, space):
        log = RecoveryLog(space, interval=JOURNAL_DEPTH, keep=8)
        stale = log.latest
        for i in range(JOURNAL_DEPTH + 1):
            space.insert(("t", i))
        with pytest.raises(RecoveryError, match="journal gap"):
            log.recover(stale)

    def test_drifted_shard_counts_raise(self):
        # shard_counts claims chunk boundaries for the shard-major
        # instance layout; recovery re-routes every tuple, so a count
        # vector that disagrees with the actual placement means the
        # checkpoint is internally inconsistent and must be rejected.
        space = Dataspace(shards=4)
        log = RecoveryLog(space, interval=4)
        space.insert_many([(f"c{i % 5}", i) for i in range(24)])
        good = log.latest
        assert log.recover(good).multiset() == space.multiset()
        counts = list(good.shard_counts)
        counts[0], counts[1] = counts[1] + 1, counts[0] - 1
        bad = Checkpoint(
            version=good.version,
            instances=good.instances,
            shard_counts=tuple(counts),
        )
        with pytest.raises(RecoveryError, match="shard counts"):
            log.recover(bad)
        log.close()


class TestEngineIntegration:
    def _labeling_engine(self, **kw):
        from repro.core.actions import assert_tuple
        from repro.core.expressions import Var
        from repro.core.patterns import P
        from repro.core.process import ProcessDefinition
        from repro.core.query import exists
        from repro.core.transactions import delayed

        a = Var("a")
        mover = ProcessDefinition(
            "Mover",
            body=[
                delayed(exists(a).match(P["src", a].retract())).then(
                    assert_tuple("dst", a)
                )
                for __ in range(4)
            ],
        )
        engine = Engine(definitions=[mover], seed=3, on_deadlock="return", **kw)
        engine.assert_tuples([("src", i) for i in range(4)])
        engine.start("Mover")
        return engine

    def test_engine_checkpoints_and_verifies(self):
        trace = Trace(detail=True)
        engine = self._labeling_engine(checkpoint_interval=2, trace=trace)
        result = engine.run()
        assert result.reason == "completed"
        assert result.checkpoints == engine.recovery.checkpoints_taken
        assert result.checkpoints >= 2
        events = list(trace.of_kind(CheckpointTaken))
        assert len(events) == result.checkpoints  # baseline included
        engine.recovery.verify()

    def test_no_recovery_log_without_interval(self):
        engine = self._labeling_engine()
        assert engine.recovery is None
        assert engine.run().checkpoints == 0
