"""Unit tests for the surface-language parser (repro.lang.parser)."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse_process, parse_program


class TestProcessStructure:
    def test_minimal_process(self):
        node = parse_process("process P() behavior -> skip end")
        assert node.name == "P"
        assert node.params == ()
        assert node.imports is None
        assert len(node.body) == 1

    def test_parameters(self):
        node = parse_process("process Sum(k, j) behavior -> skip end")
        assert node.params == ("k", "j")

    def test_import_export_rules(self):
        node = parse_process(
            "process P(i) import <i,*,*>, some a: <tag, a> if a > 0 "
            "export <i,*,*> behavior -> skip end"
        )
        assert len(node.imports) == 2
        assert node.imports[1].locals == ("a",)
        assert node.imports[1].guard is not None
        assert len(node.exports) == 1

    def test_program_with_multiple_processes(self):
        nodes = parse_program(
            "process A() behavior -> skip end process B() behavior -> skip end"
        )
        assert [n.name for n in nodes] == ["A", "B"]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_process("process P() behavior -> skip end extra")


class TestTransactions:
    def _txn(self, text):
        node = parse_process(f"process P() behavior {text} end")
        stmt = node.body[0]
        assert isinstance(stmt, ast.TxnNode)
        return stmt

    def test_pure_action(self):
        txn = self._txn("-> (x, 1)")
        assert txn.query is None
        assert txn.tag == "->"
        assert isinstance(txn.actions[0], ast.AssertNode)

    def test_quantified_query_with_retract(self):
        txn = self._txn("exists a : <year, a>^ : a > 87 -> (found, a)")
        assert txn.query.quantifier == "exists"
        assert txn.query.variables == ("a",)
        assert txn.query.atoms[0].retract
        assert txn.query.test is not None

    def test_forall(self):
        txn = self._txn("all a : <x, a>^ -> skip")
        assert txn.query.quantifier == "all"

    def test_negated_query(self):
        txn = self._txn("no <x, *> -> (none, 1)")
        assert txn.query.negated

    def test_delayed_and_consensus_tags(self):
        assert self._txn("<x> => skip").tag == "=>"
        assert self._txn("<x> ^^ exit").tag == "^^"

    def test_test_only_guard(self):
        txn = self._txn(": 1 > 0 -> skip")
        assert txn.query.atoms == ()
        assert txn.query.test is not None

    def test_action_list(self):
        txn = self._txn("-> let N = 5, (x, N), Spawnee(N), exit")
        kinds = [type(a) for a in txn.actions]
        assert kinds == [ast.LetNode, ast.AssertNode, ast.SpawnNode, ast.SimpleAction]

    def test_missing_tag_rejected(self):
        with pytest.raises(ParseError):
            self._txn("<x> skip")

    def test_multiple_atoms(self):
        txn = self._txn("exists a, b : <x, a>, <y, b> -> skip")
        assert len(txn.query.atoms) == 2


class TestConstructs:
    def _stmt(self, text):
        return parse_process(f"process P() behavior {text} end").body[0]

    def test_selection(self):
        node = self._stmt("[ -> (a, 1) | -> (b, 1) ]")
        assert isinstance(node, ast.SelectNode)
        assert len(node.branches) == 2

    def test_repetition(self):
        node = self._stmt("*[ <x>^ -> skip ]")
        assert isinstance(node, ast.RepeatNode)

    def test_replication(self):
        node = self._stmt("~[ <x>^ -> skip ]")
        assert isinstance(node, ast.ReplicateNode)

    def test_branch_bodies(self):
        node = self._stmt("[ -> (a, 1) ; -> (b, 1) ; -> (c, 1) | -> (d, 1) ]")
        assert len(node.branches[0].body) == 2

    def test_sequence_in_behavior(self):
        node = parse_process("process P() behavior -> (a, 1) ; -> (b, 1) end")
        assert len(node.body) == 2


class TestExpressions:
    def _test_expr(self, text):
        txn = parse_process(f"process P() behavior : {text} -> skip end").body[0]
        return txn.query.test

    def test_precedence_arith_over_comparison(self):
        node = self._test_expr("a + 1 > b * 2")
        assert isinstance(node, ast.Binary) and node.op == ">"
        assert node.left.op == "+" and node.right.op == "*"

    def test_boolean_precedence(self):
        node = self._test_expr("a > 0 and b > 0 or not c > 0")
        assert node.op == "or"
        assert node.left.op == "and"
        assert isinstance(node.right, ast.Unary)

    def test_power_right_associative(self):
        node = self._test_expr("k - 2 ** (j - 1) = 0")
        assert node.op == "="
        assert node.left.op == "-"
        assert node.left.right.op == "**"

    def test_has_membership(self):
        node = self._test_expr("has(some v: <label, v> : v > 3)")
        assert isinstance(node, ast.Has)
        assert node.locals == ("v",)
        assert node.test is not None

    def test_has_without_locals_or_test(self):
        node = self._test_expr("has(<ready>)")
        assert isinstance(node, ast.Has)
        assert node.locals == ()
        assert node.test is None

    def test_call_expression(self):
        node = self._test_expr("neighbor(p, q)")
        assert isinstance(node, ast.CallExpr)
        assert node.func == "neighbor"
        assert len(node.args) == 2

    def test_unary_minus_and_parens(self):
        node = self._test_expr("-(a + 1) < 0")
        assert node.op == "<"
        assert isinstance(node.left, ast.Unary)
