"""Engine tests: consensus transactions, consensus sets, composite commits."""

import pytest

from repro.core.actions import EXIT, assert_tuple
from repro.core.constructs import guarded, repeat
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists, no
from repro.core.transactions import consensus, delayed, immediate
from repro.errors import DeadlockError, EngineError
from repro.runtime.engine import Engine
from repro.runtime.events import ConsensusFired, Trace


class TestBarrier:
    def _barrier_process(self, marker):
        k = Var("k")
        return ProcessDefinition(
            f"P{marker}",
            params=("k",),
            body=[
                immediate().then(assert_tuple("before", Var("k"))),
                consensus(),
                immediate().then(assert_tuple("after", Var("k"))),
            ],
        )

    def test_n_way_barrier(self):
        """No process passes the consensus until every one has arrived."""
        defn = self._barrier_process("")
        engine = Engine(definitions=[defn], seed=3, trace=Trace(True))
        for k in range(6):
            engine.start("P", (k,))
        result = engine.run()
        assert result.completed
        assert result.consensus_rounds == 1
        fired = [e for e in engine.trace.events if isinstance(e, ConsensusFired)]
        assert len(fired[0].pids) == 6
        # every "before" committed in a round before any "after"
        befores = [
            e.round
            for e in engine.trace.events
            if getattr(e, "label", None) is None and getattr(e, "asserted", 0)
        ]
        from repro.runtime.events import TxnCommitted

        rounds_before = [
            e.round for e in engine.trace.of_kind(TxnCommitted) if e.mode == "IMMEDIATE"
        ]
        barrier_round = fired[0].round
        first_six = sorted(rounds_before)[:6]
        assert all(r <= barrier_round for r in first_six)

    def test_consensus_set_scoped_by_views(self):
        """Two disjoint communities synchronize independently."""
        g = Var("g")
        member = ProcessDefinition(
            "Member",
            params=("g",),
            imports=[P[g, ANY]],
            exports=[P[g, ANY]],
            body=[
                consensus(exists().match(P[g, "token"])).then(
                    assert_tuple(g, "done")
                ),
            ],
        )
        engine = Engine(definitions=[member], seed=2, trace=Trace(True))
        engine.assert_tuples([("red", "token"), ("blue", "token")])
        engine.start("Member", ("red",))
        engine.start("Member", ("red",))
        engine.start("Member", ("blue",))
        result = engine.run()
        assert result.completed
        fired = [e for e in engine.trace.events if isinstance(e, ConsensusFired)]
        sizes = sorted(len(e.pids) for e in fired)
        assert sizes == [1, 2]  # blue alone; the two reds together
        assert engine.dataspace.count_matching(P["red", "done"]) == 2
        assert engine.dataspace.count_matching(P["blue", "done"]) == 1

    def test_singleton_consensus_fires_alone(self):
        solo = ProcessDefinition(
            "Solo", body=[consensus().then(assert_tuple("solo", 1))]
        )
        engine = Engine(definitions=[solo], seed=1)
        engine.start("Solo")
        assert engine.run().completed
        assert ("solo", 1) in engine.dataspace.multiset()


class TestReadiness:
    def test_consensus_waits_for_query(self):
        """A consensus transaction with an unsatisfied query blocks even
        when every process has arrived; a producer unblocks it."""
        waiter = ProcessDefinition(
            "Waiter",
            body=[consensus(exists().match(P["go", ANY])).then(assert_tuple("went", 1))],
        )
        producer = ProcessDefinition(
            "Producer", body=[immediate().then(assert_tuple("go", 1))]
        )
        engine = Engine(definitions=[waiter, producer], seed=1, policy="fifo")
        engine.start("Waiter")
        engine.start("Producer")
        assert engine.run().completed
        assert ("went", 1) in engine.dataspace.multiset()

    def test_running_member_blocks_consensus(self):
        """The consensus cannot fire while a member of the set is still
        running (here: blocked on a delayed transaction)."""
        arrived = ProcessDefinition(
            "Arrived", body=[consensus().then(assert_tuple("fired", 1))]
        )
        straggler = ProcessDefinition(
            "Straggler",
            body=[delayed(exists().match(P["release", ANY]))],
        )
        engine = Engine(definitions=[arrived, straggler], seed=1, on_deadlock="return")
        engine.assert_tuples([("shared", 1)])  # both import it -> one set
        engine.start("Arrived")
        engine.start("Straggler")
        result = engine.run()
        # straggler never released: consensus must NOT have fired
        assert result.reason == "deadlock"
        assert ("fired", 1) not in engine.dataspace.multiset()

    def test_consensus_unsatisfiable_query_deadlocks(self):
        stuck = ProcessDefinition(
            "Stuck", body=[consensus(exists().match(P["never", ANY]))]
        )
        engine = Engine(definitions=[stuck], seed=1)
        engine.start("Stuck")
        with pytest.raises(DeadlockError):
            engine.run()


class TestCompositeEffect:
    def test_retractions_then_assertions(self):
        """Members exchange tuples atomically: each retracts its own token
        and asserts one for the other; both queries are evaluated against
        the PRE-consensus dataspace."""
        mine, theirs = variables("mine theirs")
        swapper = ProcessDefinition(
            "Swapper",
            params=("mine", "theirs"),
            body=[
                consensus(exists().match(P["token", mine].retract())).then(
                    assert_tuple("token", theirs)
                ),
            ],
        )
        engine = Engine(definitions=[swapper], seed=6)
        engine.assert_tuples([("token", "a"), ("token", "b")])
        engine.start("Swapper", ("a", "b"))
        engine.start("Swapper", ("b", "a"))
        result = engine.run()
        assert result.completed
        assert result.consensus_rounds == 1
        assert engine.dataspace.multiset() == {("token", "a"): 1, ("token", "b"): 1}

    def test_consensus_retraction_conflict_blocks(self):
        """Two members needing to retract the SAME single instance can never
        be simultaneously satisfiable."""
        grabber = ProcessDefinition(
            "Grabber",
            body=[consensus(exists().match(P["prize", ANY].retract()))],
        )
        engine = Engine(definitions=[grabber], seed=1, on_deadlock="return")
        engine.assert_tuples([("prize", 1)])
        engine.start("Grabber")
        engine.start("Grabber")
        assert engine.run().reason == "deadlock"
        assert engine.dataspace.count_matching(P["prize", ANY]) == 1

    def test_consensus_in_selection_with_immediate_alternative(self):
        """The Sort pattern: keep working while possible, join consensus when
        locally done."""
        a = Var("a")
        worker = ProcessDefinition(
            "Worker",
            body=[
                repeat(
                    guarded(
                        immediate(exists(a).match(P["work", a].retract())).then(
                            assert_tuple("out", a)
                        )
                    ),
                    guarded(
                        consensus(no(P["work", ANY])).then(EXIT)
                    ),
                ),
                immediate().then(assert_tuple("exited", 1)),
            ],
        )
        engine = Engine(definitions=[worker], seed=8)
        engine.assert_tuples([("work", i) for i in range(7)])
        for __ in range(3):
            engine.start("Worker")
        result = engine.run()
        assert result.completed
        assert engine.dataspace.count_matching(P["out", ANY]) == 7
        assert engine.dataspace.count_matching(P["exited", 1]) == 3
        assert result.consensus_rounds == 1

    def test_consensus_from_replica_rejected(self):
        from repro.core.constructs import replicate

        # Replication constructor already rejects consensus guards; go
        # behind its back with a consensus in a branch BODY.
        bad = ProcessDefinition(
            "Bad",
            body=[
                replicate(
                    guarded(
                        immediate(exists().match(P["x", ANY].retract())),
                        consensus(),
                    )
                )
            ],
        )
        engine = Engine(definitions=[bad], seed=1)
        engine.assert_tuples([("x", 1)])
        engine.start("Bad")
        with pytest.raises(EngineError):
            engine.run()
