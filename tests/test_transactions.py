"""Unit tests for transactions and atomic execution (repro.core.transactions)."""

import pytest

from repro.core.actions import ABORT, EXIT, CallPython, assert_tuple, let, spawn
from repro.core.dataspace import Dataspace
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.query import exists, forall
from repro.core.transactions import (
    Control,
    Mode,
    check_ready,
    consensus,
    delayed,
    execute,
    immediate,
)
from repro.core.views import FULL_VIEW, View
from repro.errors import ExportViolation


def run(txn, ds, params=None, view=FULL_VIEW, owner=1, **kw):
    window = view.window(ds, params or {})
    return execute(txn, window, params or {}, owner, **kw)


@pytest.fixture
def years():
    ds = Dataspace()
    ds.insert_many([("year", y) for y in (85, 87, 88, 90)])
    return ds


class TestBuilders:
    def test_modes(self):
        assert immediate().build().mode is Mode.IMMEDIATE
        assert delayed().build().mode is Mode.DELAYED
        assert consensus().build().mode is Mode.CONSENSUS

    def test_blocking_classification(self):
        assert not immediate().build().is_blocking()
        assert delayed().build().is_blocking()
        assert consensus().build().is_blocking()

    def test_label_and_with_actions(self):
        txn = immediate().labeled("t").build()
        assert txn.label == "t"
        more = txn.with_actions(EXIT)
        assert len(more.actions) == 1
        assert more.relabel("u").label == "u"

    def test_builder_accepts_query_builder(self, abc):
        a, _, _ = abc
        txn = immediate(exists(a).match(P["x", a])).build()
        assert txn.query.variables == ("a",)

    def test_repr_tags(self):
        assert "->" in repr(immediate().build())
        assert "=>" in repr(delayed().build())
        assert "^^" in repr(consensus().build())


class TestPaperTransaction:
    def test_section_2_2_immediate(self, years):
        """∃α: <year,α>↑ : α > 87 → let N = α, (found, α)"""
        a = Var("a")
        txn = (
            immediate(exists(a).match(P["year", a].retract()).such_that(a > 87))
            .then(let("N", a), assert_tuple("found", a))
            .build()
        )
        outcome = run(txn, years)
        assert outcome.success
        n = outcome.lets["N"]
        assert n in (88, 90)
        assert years.count_matching(P["found", n]) == 1
        assert years.count_matching(P["year", n]) == 0
        # atomic: exactly one retraction, one assertion
        assert len(outcome.retracted) == 1
        assert len(outcome.asserted) == 1

    def test_failed_query_has_no_effect(self, years):
        a = Var("a")
        txn = (
            immediate(exists(a).match(P["year", a].retract()).such_that(a > 99))
            .then(assert_tuple("found", a))
            .build()
        )
        before = years.snapshot()
        outcome = run(txn, years)
        assert not outcome.success
        assert years.snapshot() == before


class TestExecuteSemantics:
    def test_pure_assertion(self, space):
        txn = immediate().then(assert_tuple("greeting", "hello")).build()
        outcome = run(txn, space)
        assert outcome.success
        assert space.multiset() == {("greeting", "hello"): 1}

    def test_owner_stamped_on_asserts(self, space):
        txn = immediate().then(assert_tuple("x", 1)).build()
        outcome = run(txn, space, owner=7)
        assert outcome.asserted[0].owner == 7

    def test_let_uses_previous_lets(self, space):
        txn = (
            immediate()
            .then(let("N", 5), let("M", Var("N") + 1), assert_tuple("x", Var("M")))
            .build()
        )
        run(txn, space)
        assert ("x", 6) in space.multiset()

    def test_spawn_recorded_not_executed(self, years):
        a = Var("a")
        txn = (
            immediate(exists(a).match(P["year", a]))
            .then(spawn("Statistics", a))
            .build()
        )
        outcome = run(txn, years)
        assert outcome.spawned[0][0] == "Statistics"
        assert outcome.spawned[0][1][0] in (85, 87, 88, 90)

    def test_control_actions(self, space):
        assert run(immediate().then(EXIT).build(), space).control is Control.EXIT
        assert run(immediate().then(ABORT).build(), space).control is Control.ABORT
        assert run(immediate().build(), space).control is Control.NONE

    def test_callback_sees_bindings(self, years):
        seen = []
        a = Var("a")
        txn = (
            immediate(exists(a).match(P["year", 90], P["year", a]).such_that(a < 90))
            .then(CallPython(seen.append))
            .build()
        )
        outcome = run(txn, years)
        assert outcome.success
        assert seen[0]["a"] < 90

    def test_forall_actions_run_per_match(self, years):
        a = Var("a")
        txn = (
            immediate(forall(a).match(P["year", a].retract()).such_that(a >= 87))
            .then(assert_tuple("seen", a))
            .build()
        )
        outcome = run(txn, years)
        assert outcome.match_count == 3
        assert years.count_matching(P["seen", ANY]) == 3
        assert years.count_matching(P["year", ANY]) == 1

    def test_reads_counted(self, years):
        a, b = variables("a b")
        txn = immediate(exists(a, b).match(P["year", a], P["year", b])).build()
        outcome = run(txn, years)
        assert outcome.reads == 2

    def test_precomputed_result_skips_reevaluation(self, years):
        a = Var("a")
        txn = immediate(exists(a).match(P["year", a].retract())).build()
        window = FULL_VIEW.window(years, {})
        result = txn.query.evaluate(window, {})
        outcome = execute(txn, window, {}, owner=1, result=result)
        assert outcome.success
        assert outcome.retracted[0].values == result.matches[0].retracted[0].values

    def test_assert_sink_defers_insertion(self, space):
        sink: list = []
        txn = immediate().then(assert_tuple("x", 1)).build()
        window = FULL_VIEW.window(space, {})
        outcome = execute(txn, window, {}, owner=3, assert_sink=sink)
        assert outcome.success
        assert len(space) == 0
        assert sink == [(("x", 1), 3)]

    def test_check_ready_has_no_effects(self, years):
        a = Var("a")
        txn = delayed(exists(a).match(P["year", a].retract())).build()
        window = FULL_VIEW.window(years, {})
        result = check_ready(txn, window, {})
        assert result.success
        assert len(years) == 4  # nothing retracted


class TestViewInteraction:
    def test_window_restricts_query(self, years):
        a = Var("a")
        v = Var("v")
        from repro.core.views import import_rule

        view = View(imports=[import_rule("year", v, guard=(v <= 87))])
        txn = immediate(exists(a).match(P["year", a]).such_that(a > 87)).build()
        outcome = run(txn, years, view=view)
        assert not outcome.success  # 88/90 exist in D but not in W

    def test_export_violation_raises(self, years):
        view = View(exports=[P["found", ANY]])
        txn = immediate().then(assert_tuple("other", 1)).build()
        with pytest.raises(ExportViolation):
            run(txn, years, view=view)

    def test_export_violation_dropped_when_configured(self, years):
        view = View(exports=[P["found", ANY]])
        txn = immediate().then(assert_tuple("other", 1), assert_tuple("found", 2)).build()
        outcome = run(txn, years, view=view, export_policy="drop")
        assert outcome.success
        assert years.count_matching(P["other", ANY]) == 0
        assert years.count_matching(P["found", 2]) == 1

    def test_retraction_maps_to_dataspace(self, years):
        # retraction of a window tuple removes the underlying instance
        a = Var("a")
        view = View(imports=[P["year", ANY]])
        txn = immediate(forall(a).match(P["year", a].retract())).build()
        run(txn, years, view=view)
        assert years.count_matching(P["year", ANY]) == 0
