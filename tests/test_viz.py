"""Unit tests for the visualization layer (repro.viz)."""

import pytest

from repro.core.patterns import ANY, P
from repro.programs import run_sum1, run_sum3
from repro.viz import (
    DataspaceObserver,
    concurrency_profile,
    phase_summary,
    process_activity,
    render_dataspace,
    render_grid,
    render_histogram,
    render_profile,
    render_timeline,
    run_metrics,
)
from repro.workloads import random_array


@pytest.fixture(scope="module")
def sum3_run():
    return run_sum3(random_array(32, seed=2), seed=4, detail=True)


@pytest.fixture(scope="module")
def sum1_run():
    return run_sum1(random_array(16, seed=2), seed=4, detail=True)


class TestStats:
    def test_run_metrics_merges_sources(self, sum3_run):
        metrics = run_metrics(sum3_run.result, sum3_run.trace)
        assert metrics.commits == 31
        assert metrics.reason == "completed"
        assert metrics.parallelism > 1
        assert metrics.peak_concurrency >= metrics.parallelism / 2
        row = metrics.as_row()
        assert row["commits"] == 31

    def test_concurrency_profile_sums_to_commits(self, sum3_run):
        profile = concurrency_profile(sum3_run.trace)
        assert sum(profile.values()) == sum3_run.result.commits

    def test_profile_decreases_over_waves(self, sum3_run):
        profile = concurrency_profile(sum3_run.trace)
        rounds = sorted(profile)
        # first merge wave is the widest
        assert profile[rounds[0]] == max(profile.values())

    def test_process_activity(self, sum1_run):
        activity = process_activity(sum1_run.trace)
        assert activity  # every process shows up
        total = sum(slot["commits"] for slot in activity.values())
        assert total == sum1_run.result.commits

    def test_phase_summary_matches_consensus_rounds(self, sum1_run):
        phases = phase_summary(sum1_run.trace)
        consensus_phases = [p for p in phases if p.participants > 0]
        assert len(consensus_phases) == sum1_run.result.consensus_rounds
        # Sum1's first phase does N/2 merges
        assert consensus_phases[0].commits >= 8


class TestRenderers:
    def test_render_dataspace(self, space):
        space.insert_many([("x", 1), ("x", 1), ("y", 2)])
        text = render_dataspace(space)
        assert "|D|=3" in text
        assert "x2" in text  # multiplicity marker

    def test_render_dataspace_truncates(self, space):
        space.insert_many([("t", i) for i in range(100)])
        text = render_dataspace(space, limit=5)
        assert "more distinct tuples" in text

    def test_render_histogram(self):
        text = render_histogram({1: 10, 2: 5}, width=10, label="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_render_histogram_empty(self):
        assert "empty" in render_histogram({})

    def test_render_profile(self, sum3_run):
        assert "commits per virtual round" in render_profile(sum3_run.trace)

    def test_render_timeline_limits(self, sum3_run):
        text = render_timeline(sum3_run.trace, limit=5)
        assert text.count("\n") <= 6
        assert "commit" in text

    def test_render_grid(self):
        cells = {(0, 0): "a", (1, 1): "b"}
        text = render_grid(cells, 2, 2)
        rows = text.splitlines()
        assert rows[0].split() == ["a", "."]
        assert rows[1].split() == [".", "b"]


class TestObserver:
    def test_observer_samples_on_changes(self, space):
        observer = DataspaceObserver(space, every=1)
        series = observer.watch("xs", P["x", ANY])
        space.insert(("x", 1))
        space.insert(("x", 2))
        space.insert(("y", 1))  # still sampled, count unchanged
        observer.detach()
        assert series.counts()[0] == 0
        assert series.final() == 2
        assert series.peak() == 2

    def test_observer_every_n(self, space):
        observer = DataspaceObserver(space, every=2)
        series = observer.watch("xs", P["x", ANY])
        for i in range(4):
            space.insert(("x", i))
        # initial sample + one per two changes
        assert len(series.samples) == 3

    def test_detach_stops_sampling(self, space):
        observer = DataspaceObserver(space)
        series = observer.watch("xs", P["x", ANY])
        observer.detach()
        observer.detach()  # idempotent
        space.insert(("x", 1))
        assert len(series.samples) == 1

    def test_observer_does_not_perturb(self, space):
        version_before = space.version
        observer = DataspaceObserver(space)
        observer.watch("all", P[ANY])
        assert space.version == version_before

    def test_bad_every_rejected(self, space):
        with pytest.raises(ValueError):
            DataspaceObserver(space, every=0)
