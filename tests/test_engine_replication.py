"""Engine tests: the replication construct (unbounded concurrency)."""


from repro.core.actions import EXIT, ABORT, assert_tuple
from repro.core.constructs import guarded, replicate
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed, immediate
from repro.runtime.engine import Engine
from repro.runtime.events import ReplicaSpawned, Trace


def run_single(body, rows=(), seed=0, defs=(), detail=False):
    main = ProcessDefinition("Main", body=body)
    engine = Engine(definitions=[main, *defs], seed=seed, trace=Trace(detail))
    engine.assert_tuples(rows)
    engine.start("Main")
    return engine, engine.run()


class TestFixpoint:
    def test_drains_to_fixpoint(self):
        a = Var("a")
        engine, result = run_single(
            [
                replicate(
                    guarded(
                        immediate(exists(a).match(P["in", a].retract())).then(
                            assert_tuple("out", a)
                        )
                    )
                )
            ],
            rows=[("in", i) for i in range(10)],
        )
        assert result.completed
        assert engine.dataspace.count_matching(P["out", ANY]) == 10

    def test_pairwise_merge_terminates(self):
        n, m, a, b = variables("n m a b")
        engine, result = run_single(
            [
                replicate(
                    guarded(
                        immediate(
                            exists(n, a, m, b)
                            .match(P[n, a].retract(), P[m, b].retract())
                            .such_that(n != m)
                        ).then(assert_tuple(m, a + b))
                    )
                )
            ],
            rows=[(k, 1) for k in range(1, 9)],
        )
        (final,) = engine.dataspace.snapshot()
        assert final[1] == 8

    def test_empty_dataspace_terminates_immediately(self):
        a = Var("a")
        engine, result = run_single(
            [replicate(guarded(immediate(exists(a).match(P["in", a].retract()))))]
        )
        assert result.completed

    def test_statements_after_replication_run(self):
        a = Var("a")
        engine, __ = run_single(
            [
                replicate(
                    guarded(immediate(exists(a).match(P["in", a].retract())))
                ),
                immediate().then(assert_tuple("after", 1)),
            ],
            rows=[("in", 1)],
        )
        assert ("after", 1) in engine.dataspace.multiset()


class TestParallelRounds:
    def test_merges_happen_in_logarithmic_rounds(self):
        """The replication pump fires a maximal conflict-free batch per
        round, so N/2 merges land in round one, N/4 in round two, ..."""
        n, m, a, b = variables("n m a b")
        N = 64
        engine, result = run_single(
            [
                replicate(
                    guarded(
                        immediate(
                            exists(n, a, m, b)
                            .match(P[n, a].retract(), P[m, b].retract())
                            .such_that(n != m)
                        ).then(assert_tuple(m, a + b))
                    )
                )
            ],
            rows=[(k, 1) for k in range(1, N + 1)],
            seed=5,
        )
        assert result.commits == N - 1
        # log2(64)=6 waves plus construct overhead; far below N-1
        assert result.rounds <= 12
        assert result.parallelism > 4

    def test_batch_reads_pre_round_snapshot(self):
        """Tuples asserted during a batch are invisible to that batch, like
        a synchronous parallel step: each <v, k> increments once per round,
        so the chain of C increments takes exactly C extra rounds."""
        a = Var("a")
        engine, result = run_single(
            [
                replicate(
                    guarded(
                        immediate(
                            exists(a).match(P["v", a].retract()).such_that(a < 5)
                        ).then(assert_tuple("v", a + 1))
                    )
                )
            ],
            rows=[("v", 0)],
            detail=True,
        )
        assert ("v", 5) in engine.dataspace.multiset()
        per_round = engine.trace.commits_by_round()
        assert all(count == 1 for count in per_round.values())


class TestBodiesAndControl:
    def test_branch_bodies_run_as_replicas(self):
        a = Var("a")
        engine, __ = run_single(
            [
                replicate(
                    guarded(
                        immediate(exists(a).match(P["task", a].retract())).then(
                            assert_tuple("claimed", a)
                        ),
                        immediate(exists(a).match(P["claimed", a].retract())).then(
                            assert_tuple("finished", a)
                        ),
                    )
                )
            ],
            rows=[("task", i) for i in range(6)],
        )
        assert engine.dataspace.count_matching(P["finished", ANY]) == 6

    def test_exit_in_guard_stops_replication(self):
        a = Var("a")
        engine, result = run_single(
            [
                replicate(
                    guarded(
                        immediate(
                            exists(a).match(P["n", a].retract()).such_that(a == 0)
                        ).then(EXIT)
                    ),
                    guarded(
                        immediate(
                            exists(a).match(P["n", a].retract()).such_that(a > 0)
                        ).then(assert_tuple("seen", a))
                    ),
                ),
                immediate().then(assert_tuple("after", 1)),
            ],
            rows=[("n", 0)],
        )
        assert result.completed
        assert ("after", 1) in engine.dataspace.multiset()

    def test_abort_in_replica_kills_process(self):
        a = Var("a")
        engine, result = run_single(
            [
                replicate(
                    guarded(
                        immediate(exists(a).match(P["n", a].retract())).then(ABORT)
                    )
                ),
                immediate().then(assert_tuple("after", 1)),
            ],
            rows=[("n", 1)],
        )
        assert result.completed
        assert ("after", 1) not in engine.dataspace.multiset()
        assert engine.society.get(1).status.value == "aborted"

    def test_delayed_guard_replication_waits_then_exits(self):
        a = Var("a")
        worker = [
            replicate(
                guarded(
                    delayed(exists(a).match(P["job", a].retract())).then(
                        assert_tuple("done", a)
                    )
                ),
                guarded(
                    delayed(exists().match(P["stop", ANY].retract())).then(EXIT)
                ),
            )
        ]
        feeder = ProcessDefinition(
            "Feeder",
            body=[
                immediate().then(assert_tuple("job", 1)),
                immediate().then(assert_tuple("job", 2)),
                immediate().then(assert_tuple("stop", 0)),
            ],
        )
        main = ProcessDefinition("Main", body=worker)
        engine = Engine(definitions=[main, feeder], seed=4)
        engine.start("Main")
        engine.start("Feeder")
        result = engine.run()
        assert result.completed
        # the stop signal races the remaining jobs; at least one job must
        # have been served before the exit could possibly fire
        assert engine.dataspace.count_matching(P["done", ANY]) >= 1
        assert engine.society.get(1).status.value == "terminated"

    def test_replica_spawn_events_recorded(self):
        a = Var("a")
        engine, __ = run_single(
            [replicate(guarded(immediate(exists(a).match(P["x", a].retract()))))],
            rows=[("x", i) for i in range(3)],
            detail=True,
        )
        fired = [e for e in engine.trace.events if isinstance(e, ReplicaSpawned)]
        assert len(fired) == 3
