"""Direct tests of the behaviour-tree interpreter protocol.

These drive the generator with hand-crafted responses — no engine, no
dataspace — pinning the interpreter's control-flow contract: what it
yields, what it expects back, and how exit/abort propagate.
"""


from repro.core.constructs import (
    guarded,
    repeat,
    replicate,
    select,
)
from repro.core.transactions import Control, TransactionOutcome, immediate
from repro.runtime.interpreter import (
    ReplicationRequest,
    SelectRequest,
    TxnRequest,
    interpret,
    interpret_body,
)


def ok(control=Control.NONE):
    return TransactionOutcome(success=True, control=control)


def fail():
    return TransactionOutcome.failure()


def drive(gen, responses):
    """Feed *responses* to the generator; return (requests, final control)."""
    requests = []
    value = None
    try:
        while True:
            request = gen.send(value)
            requests.append(request)
            if not responses:
                raise AssertionError(f"interpreter asked for more than {requests}")
            value = responses.pop(0)
    except StopIteration as stop:
        return requests, stop.value


class TestSequenceProtocol:
    def test_yields_each_transaction_in_order(self):
        t1, t2 = immediate().labeled("a").build(), immediate().labeled("b").build()
        gen = interpret([_stmt(t1), _stmt(t2)])
        requests, control = drive(gen, [ok(), ok()])
        assert [r.transaction.label for r in requests] == ["a", "b"]
        assert control is Control.NONE

    def test_failed_immediate_is_skip(self):
        gen = interpret([_stmt(immediate().build()), _stmt(immediate().labeled("next").build())])
        requests, control = drive(gen, [fail(), ok()])
        assert len(requests) == 2  # the failure did not stop the sequence
        assert control is Control.NONE

    def test_exit_stops_sequence(self):
        gen = interpret([_stmt(immediate().build()), _stmt(immediate().build())])
        requests, control = drive(gen, [ok(Control.EXIT)])
        assert len(requests) == 1
        assert control is Control.EXIT

    def test_abort_propagates(self):
        gen = interpret([_stmt(immediate().build())])
        __, control = drive(gen, [ok(Control.ABORT)])
        assert control is Control.ABORT


class TestSelectionProtocol:
    def test_selected_branch_body_runs(self):
        body_txn = immediate().labeled("body").build()
        sel = select(guarded(immediate().build(), _stmt(body_txn)))
        gen = interpret([sel])
        requests, control = drive(gen, [(0, ok()), ok()])
        assert isinstance(requests[0], SelectRequest)
        assert isinstance(requests[1], TxnRequest)
        assert requests[1].transaction.label == "body"
        assert control is Control.NONE

    def test_failed_selection_is_skip(self):
        sel = select(guarded(immediate().build()))
        gen = interpret([sel, _stmt(immediate().labeled("after").build())])
        requests, control = drive(gen, [None, ok()])
        assert requests[1].transaction.label == "after"

    def test_guard_exit_propagates(self):
        sel = select(guarded(immediate().build()))
        gen = interpret([sel])
        __, control = drive(gen, [(0, ok(Control.EXIT))])
        assert control is Control.EXIT


class TestRepetitionProtocol:
    def test_repeats_until_selection_fails(self):
        rep = repeat(guarded(immediate().build()))
        gen = interpret([rep])
        requests, control = drive(gen, [(0, ok()), (0, ok()), None])
        assert len(requests) == 3
        assert control is Control.NONE

    def test_guard_exit_ends_repetition_not_process(self):
        rep = repeat(guarded(immediate().build()))
        after = immediate().labeled("after").build()
        gen = interpret([rep, _stmt(after)])
        requests, control = drive(gen, [(0, ok(Control.EXIT)), ok()])
        assert requests[-1].transaction.label == "after"
        assert control is Control.NONE

    def test_body_exit_ends_repetition(self):
        body = immediate().labeled("body").build()
        rep = repeat(guarded(immediate().build(), _stmt(body)))
        gen = interpret([rep])
        __, control = drive(gen, [(0, ok()), ok(Control.EXIT)])
        assert control is Control.NONE

    def test_body_abort_propagates(self):
        body = immediate().build()
        rep = repeat(guarded(immediate().build(), _stmt(body)))
        gen = interpret([rep])
        __, control = drive(gen, [(0, ok()), ok(Control.ABORT)])
        assert control is Control.ABORT


class TestReplicationProtocol:
    def test_replication_yields_single_request(self):
        rep = replicate(guarded(immediate().build()))
        gen = interpret([rep])
        requests, control = drive(gen, [Control.NONE])
        assert len(requests) == 1
        assert isinstance(requests[0], ReplicationRequest)
        assert control is Control.NONE

    def test_replication_abort_response_propagates(self):
        rep = replicate(guarded(immediate().build()))
        gen = interpret([rep])
        __, control = drive(gen, [Control.ABORT])
        assert control is Control.ABORT

    def test_interpret_body_runs_branch_statements(self):
        branch = guarded(
            immediate().build(), _stmt(immediate().labeled("inner").build())
        )
        gen = interpret_body(branch)
        requests, control = drive(gen, [ok()])
        assert requests[0].transaction.label == "inner"
        assert control is Control.NONE


def _stmt(txn):
    from repro.core.constructs import TransactionStatement

    return TransactionStatement(txn)
