"""Columnar storage units and the PR's bugfix regressions.

The struct-of-arrays backend (``ColumnarStore``) carries machinery the
object store never needed — column promotion/demotion, tombstones and
compaction, lazy per-position indexes, the column-scan kernel — and each
mechanism has an invariant the differential suite alone would only catch
indirectly.  This module pins them down directly, alongside the three
bugfix regressions that ride with the PR: explicit ``head:N`` specs with
``N < 2`` are rejected (covered in ``test_storage_properties``), the
routing memo evicts a bounded slice instead of wiping itself, and journal
restore goes through ``record()`` so the eviction watermark can never
under-report after a pickle round trip.
"""

import pickle
from array import array

import pytest

from repro.core.dataspace import Dataspace, DataspaceChange
from repro.core.expressions import Var
from repro.core.patterns import pattern
from repro.core.storage import (
    JOURNAL_DEPTH,
    ColumnarStore,
    HeadPartitioner,
    TupleStore,
    merge_serial_lists,
    resolve_store,
)
from repro.core.tuples import make_tuple
from repro.errors import EngineError, SDLError
from repro.runtime.engine import Engine
from repro.runtime.parallel import load_shard, ship_shard

a = Var("a")


def _fill(store, rows, base=0):
    instances = [
        make_tuple(tuple(row), serial=base + i + 1, owner=0)
        for i, row in enumerate(rows)
    ]
    store.admit_many(instances)
    return instances


# ---------------------------------------------------------------------------
# resolve_store
# ---------------------------------------------------------------------------

class TestResolveStore:
    def test_defaults_to_object(self):
        for spec in (None, "", "object", "obj", " OBJECT "):
            kind, cls = resolve_store(spec)
            assert kind == "object" and cls is TupleStore

    def test_columnar_forms(self):
        for spec in ("columnar", "column", "col", " Columnar "):
            kind, cls = resolve_store(spec)
            assert kind == "columnar" and cls is ColumnarStore

    def test_rejects_garbage(self):
        for bad in ("frob", 4, True, "rowstore"):
            with pytest.raises(ValueError, match="unknown store backend"):
                resolve_store(bad)

    def test_round_trips_through_dataspace(self):
        ds = Dataspace(store="columnar")
        assert ds.store_kind == "columnar"
        assert Dataspace(store=ds.store_kind).store_kind == "columnar"
        assert Dataspace().store_kind == "object"


# ---------------------------------------------------------------------------
# column layout mechanics
# ---------------------------------------------------------------------------

class TestColumnLayout:
    def test_homogeneous_int_columns_promote_at_compaction(self):
        store = ColumnarStore(0)
        insts = _fill(store, [("k", i) for i in range(200)])
        for inst in insts[:100]:
            store.remove(inst.tid)
        group = store.groups[2]
        assert store.compactions == 1
        assert isinstance(group.cols[1], array)  # homogeneous ints
        assert not isinstance(group.cols[0], array)  # strings stay a list
        assert [i.values for i in store.iter_serial()] == [
            ("k", i) for i in range(100, 200)
        ]

    def test_promoted_column_demotes_on_mixed_append(self):
        store = ColumnarStore(0)
        insts = _fill(store, [("k", i) for i in range(200)])
        for inst in insts[:100]:
            store.remove(inst.tid)
        assert isinstance(store.groups[2].cols[1], array)
        extra = _fill(store, [("k", "not-an-int"), ("k", 5)], base=200)
        col = store.groups[2].cols[1]
        assert not isinstance(col, array)
        # the demotion rolled back any partial extend: row count is exact
        assert len(col) == len(store.groups[2].insts)
        assert [i.values for i in store.scan(2, [(0, "k")], [])][-2:] == [
            ("k", "not-an-int"), ("k", 5)
        ]
        assert all(inst.tid in store for inst in extra)

    def test_oversize_ints_stay_in_lists(self):
        store = ColumnarStore(0)
        insts = _fill(store, [("k", 2**80 + i) for i in range(200)])
        for inst in insts[:100]:
            store.remove(inst.tid)
        assert not isinstance(store.groups[2].cols[1], array)
        assert store.scan_count(2, [(1, 2**80 + 150)], []) == 1

    def test_compaction_thresholds(self):
        store = ColumnarStore(0)
        insts = _fill(store, [("k", i) for i in range(100)])
        for inst in insts[:50]:  # 50 dead of 100: below the 64 floor
            store.remove(inst.tid)
        assert store.compactions == 0
        more = _fill(store, [("k", i) for i in range(100, 130)], base=100)
        for inst in insts[50:] + more[:15]:  # crosses 65 dead of 130 rows
            store.remove(inst.tid)
        assert store.compactions == 1
        # the removals after the mid-loop compaction are fresh tombstones
        assert store.groups[2].dead == 50
        assert len(store) == 15

    def test_lazy_position_index_is_exact_and_maintained(self):
        store = ColumnarStore(0)
        insts = _fill(store, [("k", i % 4, i) for i in range(40)])
        group = store.groups[3]
        assert group.pos_index == {}  # nothing probed yet
        assert store.field_size(3, 1, 2) == 10  # first probe builds it
        assert 1 in group.pos_index
        store.remove(insts[2].tid)  # values (k, 2, 2)
        assert store.field_size(3, 1, 2) == 9  # maintained incrementally
        _fill(store, [("k", 2, 99)], base=40)
        assert store.field_size(3, 1, 2) == 10
        assert store.field_size(3, 1, 77) == 0

    def test_compaction_preserves_lazy_indexes_and_rows(self):
        store = ColumnarStore(0)
        insts = _fill(store, [("k", i % 3, i) for i in range(150)])
        assert store.field_size(3, 2, 149) == 1  # build the lazy index
        for inst in insts[:100]:
            store.remove(inst.tid)
        assert store.compactions == 1
        group = store.groups[3]
        assert 2 in group.pos_index  # survived (renumbered), not discarded
        assert store.field_size(3, 2, 149) == 1
        assert [i.values[2] for i in store.field_candidates(3, 1, 100 % 3)] == [
            i for i in range(100, 150) if i % 3 == 100 % 3
        ]

    def test_stats_shape(self):
        store = ColumnarStore(0)
        _fill(store, [("k", i) for i in range(8)])
        stats = store.stats()
        assert stats["groups"] == 1 and stats["rows"] == 8
        assert set(stats) == {
            "groups", "rows", "dead_rows", "numeric_columns",
            "lazy_indexes", "compactions",
        }


# ---------------------------------------------------------------------------
# the column-scan kernel (scan/scan_count vs. per-candidate matching)
# ---------------------------------------------------------------------------

class TestScanKernel:
    def _pair(self, rows):
        obj, col = Dataspace(), Dataspace(store="columnar")
        obj.insert_many(rows)
        col.insert_many(rows)
        return obj, col

    def test_kernel_equals_match_walk(self):
        rows = (
            [("year", i % 7) for i in range(60)]
            + [("pair", i % 5, (i + 1) % 5) for i in range(40)]
            + [("pair", i % 5, i % 5) for i in range(20)]
        )
        obj, col = self._pair(rows)
        for pat in (
            pattern("year", 3),
            pattern("year", a),
            pattern("pair", a, a),            # repeated variable
            pattern(Var("k"), a, a),
            pattern("pair", 2, Var("y")),
            pattern("absent", a),
        ):
            assert col.count_matching(pat) == obj.count_matching(pat)
            assert [i.tid for i in col.find_matching(pat)] == [
                i.tid for i in obj.find_matching(pat)
            ]

    def test_kernel_respects_bound_environment(self):
        obj, col = self._pair([("pair", i % 4, i % 3) for i in range(36)])
        pat = pattern("pair", a, Var("y"))
        for env in ({"a": 2}, {"a": 2, "y": 1}, {"y": 0}, {"a": 99}):
            assert col.count_matching(pat, env) == obj.count_matching(pat, env)
            assert [i.tid for i in col.find_matching(pat, env)] == [
                i.tid for i in obj.find_matching(pat, env)
            ]

    def test_kernel_scans_tombstoned_groups_correctly(self):
        obj, col = self._pair([("k", i % 3, i) for i in range(30)])
        for ds in (obj, col):
            doom = [i.tid for i in list(ds.instances())[::2]]
            ds.retract_many(doom)
        pat = pattern("k", a, Var("y"))
        assert col.count_matching(pat) == obj.count_matching(pat)
        assert [i.tid for i in col.find_matching(pat)] == [
            i.tid for i in obj.find_matching(pat)
        ]

    def test_unindexed_kernel_walks_columns(self):
        obj = Dataspace(indexed=False)
        col = Dataspace(indexed=False, store="columnar")
        rows = [("k", i % 5, i) for i in range(50)]
        obj.insert_many(rows)
        col.insert_many(rows)
        assert col.stores[0].field_size(3, 1, 2) == 0  # mirror TupleStore
        for pat in (pattern("k", 2, a), pattern(Var("h"), a, a)):
            assert col.count_matching(pat) == obj.count_matching(pat)
            assert [i.tid for i in col.find_matching(pat)] == [
                i.tid for i in obj.find_matching(pat)
            ]

    def test_expression_patterns_fall_back_to_match(self):
        # A literal expression over an unbound variable must raise through
        # the naive walk exactly as the object store does — the kernel may
        # not swallow it (and must not raise when there are no candidates).
        obj, col = self._pair([("year", i) for i in range(5)])
        pat = pattern("year", Var("missing") + 1)
        for ds in (obj, col):
            with pytest.raises(Exception):
                ds.count_matching(pat)
        empty_obj, empty_col = self._pair([])
        assert empty_obj.count_matching(pat) == 0
        assert empty_col.count_matching(pat) == 0

    def test_evaluable_expressions_scan(self):
        obj, col = self._pair([("year", i) for i in range(10)])
        pat = pattern("year", a + 2)
        env = {"a": 5}
        assert col.count_matching(pat, env) == obj.count_matching(pat, env) == 1
        assert [i.values for i in col.find_matching(pat, env)] == [("year", 7)]


# ---------------------------------------------------------------------------
# pickling + shard shipping
# ---------------------------------------------------------------------------

class TestPickleRoundTrip:
    @pytest.mark.parametrize("cls", [TupleStore, ColumnarStore])
    def test_store_round_trip_rebuilds_layout(self, cls):
        store = cls(3)
        insts = _fill(store, [("k", i % 4, i) for i in range(40)])
        for inst in insts[::3]:
            store.remove(inst.tid)
        clone = pickle.loads(pickle.dumps(store))
        assert type(clone) is cls
        assert clone.shard == 3
        assert [i.tid for i in clone.iter_serial()] == [
            i.tid for i in store.iter_serial()
        ]
        assert clone.field_size(3, 1, 2) == store.field_size(3, 1, 2)
        assert [i.tid for i in clone.candidates_probed(3, [(1, 2)])] == [
            i.tid for i in store.candidates_probed(3, [(1, 2)])
        ]

    @pytest.mark.parametrize("store_kind", ["object", "columnar"])
    def test_ship_and_load_shard(self, store_kind):
        ds = Dataspace(shards=4, store=store_kind)
        ds.insert_many([(f"c{i % 5}", i) for i in range(60)])
        shipped = [load_shard(ship_shard(s)) for s in ds.stores]
        merged = merge_serial_lists(s.iter_serial() for s in shipped)
        assert [i.tid for i in merged] == [i.tid for i in ds.instances()]
        for original, clone in zip(ds.stores, shipped):
            assert clone.kind == original.kind
            assert clone.evicted_version == original.evicted_version


# ---------------------------------------------------------------------------
# S2 regression: bounded memo eviction in HeadPartitioner
# ---------------------------------------------------------------------------

class TestRoutingMemoEviction:
    def test_eviction_is_bounded_and_routing_pure(self):
        part = HeadPartitioner(8)
        cap = part._CACHE_CAP
        before = {
            (2, f"h{i}"): part.shard_of(2, f"h{i}") for i in range(cap + 200)
        }
        # the memo never exceeds the cap, and eviction dropped a slice —
        # not the whole table.
        assert len(part._cache) <= cap
        assert len(part._cache) > cap - part._EVICT_SLICE - 1
        # eviction can only cost recomputation, never change a route
        for (arity, head), shard in before.items():
            assert part.shard_of(arity, head) == shard

    def test_working_set_at_cap_keeps_recent_entries(self):
        part = HeadPartitioner(4)
        cap = part._CACHE_CAP
        for i in range(cap):
            part.shard_of(2, i)
        assert len(part._cache) == cap
        part.shard_of(2, cap)  # one past the cap: evicts the oldest slice
        cache = part._cache
        assert (2, cap) in cache
        assert (2, cap - 1) in cache          # recent survivors
        assert (2, 0) not in cache            # oldest slice gone
        assert len(cache) == cap - part._EVICT_SLICE + 1

    def test_unhashable_heads_still_route_without_caching(self):
        part = HeadPartitioner(4)
        route = part.shard_of(1, [1, 2])
        assert route == part.shard_of(1, [1, 2])
        assert not part._cache


# ---------------------------------------------------------------------------
# S3 regression: journal restore routes through record()
# ---------------------------------------------------------------------------

class TestWatermarkAfterPickle:
    def _stamps(self, versions):
        return [DataspaceChange("assert", (), (), v) for v in versions]

    @pytest.mark.parametrize("cls", [TupleStore, ColumnarStore])
    def test_watermark_never_under_reports_after_round_trip(self, cls):
        store = cls(0)
        # overflow the journal so a real watermark exists...
        for change in self._stamps(range(1, JOURNAL_DEPTH + 10)):
            store.record(change)
        assert store.evicted_version == 9
        clone = pickle.loads(pickle.dumps(store))
        assert clone.evicted_version == 9
        assert list(c.version for c in clone.journal) == list(
            c.version for c in store.journal
        )
        # ...then keep appending on the clone: every eviction must advance
        # the watermark exactly as it would have on the original.
        for offset, change in enumerate(
            self._stamps(range(JOURNAL_DEPTH + 10, JOURNAL_DEPTH + 20))
        ):
            clone.record(change)
            store.record(change)
            assert clone.evicted_version == store.evicted_version == 10 + offset

    @pytest.mark.parametrize("cls", [TupleStore, ColumnarStore])
    def test_full_journal_round_trip_evicts_on_next_append(self, cls):
        # Exactly-full journal, nothing ever evicted: the very next append
        # after the round trip drops entry v1 and must record it.
        store = cls(0)
        for change in self._stamps(range(1, JOURNAL_DEPTH + 1)):
            store.record(change)
        assert store.evicted_version == 0
        clone = pickle.loads(pickle.dumps(store))
        assert clone.evicted_version == 0
        clone.record(self._stamps([JOURNAL_DEPTH + 1])[0])
        assert clone.evicted_version == 1

    @pytest.mark.parametrize("cls", [TupleStore, ColumnarStore])
    def test_pickled_watermark_survives_partial_journal(self, cls):
        # The pickled watermark may exceed anything derivable from the
        # restored entries (the journal was truncated upstream); restore
        # must re-impose it, not recompute a smaller one.
        store = cls(0)
        for change in self._stamps(range(1, JOURNAL_DEPTH + 50)):
            store.record(change)
        high = store.evicted_version
        assert high == 49
        clone = pickle.loads(pickle.dumps(store))
        assert clone.evicted_version == high


# ---------------------------------------------------------------------------
# facade batch mutation + engine wiring
# ---------------------------------------------------------------------------

class TestRetractMany:
    @pytest.mark.parametrize("store_kind", ["object", "columnar"])
    def test_single_event_and_journal(self, store_kind):
        ds = Dataspace(store=store_kind)
        insts = ds.insert_many([("k", i) for i in range(10)])
        mark = ds.version
        events = []
        ds.subscribe(events.append)
        gone = ds.retract_many([i.tid for i in insts[:4]])
        assert [i.tid for i in gone] == [i.tid for i in insts[:4]]
        assert ds.version == mark + 1
        assert len(events) == 1 and events[0].kind == "batch"
        assert len(ds) == 6

    def test_validates_before_mutating(self):
        ds = Dataspace(store="columnar")
        insts = ds.insert_many([("k", i) for i in range(4)])
        stranger = make_tuple(("k", 0), serial=999, owner=0)
        with pytest.raises(SDLError, match="not in the dataspace"):
            ds.retract_many([insts[0].tid, stranger.tid])
        with pytest.raises(SDLError, match="duplicate"):
            ds.retract_many([insts[0].tid, insts[0].tid])
        assert len(ds) == 4  # neither bad batch touched anything
        assert ds.retract_many([]) == []


class TestEngineWiring:
    def test_engine_rejects_dataspace_plus_store(self):
        with pytest.raises(EngineError, match="dataspace= and store="):
            Engine(dataspace=Dataspace(), store="columnar")

    def test_engine_rejects_bad_store(self):
        with pytest.raises(EngineError, match="unknown store backend"):
            Engine(store="frob")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("SDL_STORE", "columnar")
        assert Engine().dataspace.store_kind == "columnar"
        monkeypatch.delenv("SDL_STORE")
        assert Engine().dataspace.store_kind == "object"

    def test_explicit_dataspace_keeps_its_backend(self, monkeypatch):
        monkeypatch.setenv("SDL_STORE", "columnar")
        assert Engine(dataspace=Dataspace()).dataspace.store_kind == "object"

    def test_run_result_reports_backend_and_gauges(self):
        engine = Engine(store="columnar", obs=True)
        engine.assert_tuples([("k", i) for i in range(5)])
        result = engine.run()
        assert result.store == "columnar"
        assert engine.dataspace.store_kind == "columnar"
        assert result.metrics["sdl_columnar_rows"]["data"] == 5
        # pinned explicitly: the suite may run under SDL_STORE=columnar
        assert Engine(store="object").run().store == "object"
