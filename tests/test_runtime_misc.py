"""Runtime odds and ends: trace observers, engine conveniences, run results."""


from repro.core.actions import assert_tuple
from repro.core.expressions import Var
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.transactions import immediate
from repro.runtime.engine import Engine, RunResult
from repro.runtime.events import (
    ProcessCreated,
    Trace,
    TxnCommitted,
)


class TestTraceObservers:
    def test_live_observer_sees_events(self):
        trace = Trace(detail=False)
        seen = []
        detach = trace.observe(seen.append)
        nop = ProcessDefinition("Nop", body=[immediate().then(assert_tuple("x", 1))])
        engine = Engine(definitions=[nop], seed=1, trace=trace)
        engine.start("Nop")
        engine.run()
        assert any(isinstance(e, TxnCommitted) for e in seen)
        assert any(isinstance(e, ProcessCreated) for e in seen)
        detach()
        before = len(seen)
        engine2 = Engine(definitions=[nop], seed=1, trace=trace)
        engine2.start("Nop")
        engine2.run()
        assert len(seen) == before  # detached observers stay silent

    def test_counters_without_detail(self):
        trace = Trace(detail=False)
        nop = ProcessDefinition("Nop", body=[immediate().then(assert_tuple("x", 1))])
        engine = Engine(definitions=[nop], seed=1, trace=trace)
        engine.start("Nop")
        engine.run()
        assert trace.counters.commits == 1
        assert trace.events == []  # no history kept

    def test_commits_by_pid(self):
        trace = Trace(detail=True)
        nop = ProcessDefinition("Nop", body=[immediate().then(assert_tuple("x", 1))])
        engine = Engine(definitions=[nop], seed=1, trace=trace)
        engine.start("Nop")
        engine.start("Nop")
        engine.run()
        by_pid = trace.commits_by_pid()
        assert by_pid == {1: 1, 2: 1}


class TestEngineConveniences:
    def test_start_many(self):
        k = Var("k")
        echo = ProcessDefinition(
            "Echo", params=("k",), body=[immediate().then(assert_tuple("echo", k))]
        )
        engine = Engine(definitions=[echo], seed=1)
        engine.start_many([("Echo", (1,)), ("Echo", (2,)), ("Echo", (3,))])
        engine.run()
        assert engine.dataspace.count_matching(P["echo", ANY]) == 3

    def test_define_after_construction(self):
        engine = Engine(seed=1)
        engine.define(ProcessDefinition("Late", body=[immediate().then(assert_tuple("ok", 1))]))
        engine.start("Late")
        assert engine.run().completed

    def test_engine_reusable_dataspace_inspection(self):
        nop = ProcessDefinition("Nop", body=[immediate().then(assert_tuple("x", 1))])
        engine = Engine(definitions=[nop], seed=1)
        engine.start("Nop")
        result = engine.run()
        # run again after adding more work: the engine keeps going
        engine.start("Nop")
        result2 = engine.run()
        assert result2.completed
        assert engine.dataspace.count_matching(P["x", 1]) == 2


class TestRunResult:
    def test_parallelism_zero_for_empty_run(self):
        result = RunResult(
            reason="completed", steps=0, rounds=0, commits=0,
            consensus_rounds=0, live_processes=0, dataspace_size=0,
        )
        assert result.parallelism == 0.0
        assert result.completed

    def test_non_completed_flags(self):
        result = RunResult(
            reason="deadlock", steps=5, rounds=2, commits=1,
            consensus_rounds=0, live_processes=1, dataspace_size=3,
            deadlocked=["X#1"],
        )
        assert not result.completed
        assert result.deadlocked == ["X#1"]


class TestWindowRefreshEdgeCases:
    def test_stale_memo_dropped_after_mutation(self):
        from repro.core.dataspace import Dataspace
        from repro.core.views import View

        ds = Dataspace()
        view = View(imports=[P["x", ANY]])
        window = view.window(ds)
        assert window.count_matching(P["x", ANY]) == 0
        ds.insert(("x", 1))
        # candidates() refreshes implicitly through imports_instance memo
        assert window.refresh().count_matching(P["x", ANY]) == 1

    def test_footprint_tracks_retractions(self):
        from repro.core.dataspace import Dataspace
        from repro.core.views import View

        ds = Dataspace()
        inst = ds.insert(("x", 1))
        window = View(imports=[P["x", ANY]]).window(ds)
        assert window.footprint() == {inst.tid}
        ds.retract(inst.tid)
        assert window.footprint() == frozenset()
