"""Differential properties: planner-on vs planner-off (naive) evaluation.

The planner reorders atoms and intersects index buckets but must preserve
the semantics exactly: the *set* of joint matches is identical, query
verdicts are identical, and whole-program outcomes agree.  ``∃`` commits
an arbitrary match and ``∀`` enumerates greedily, so individual committed
matches may differ between the two paths for a given seed — the properties
below assert exactly the order-independent facts.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.dataspace import Dataspace
from repro.core.expressions import variables
from repro.core.patterns import ANY, P
from repro.core.plan import QueryPlanner
from repro.core.matching import iter_joint_matches
from repro.core.query import Query
from repro.core.views import FULL_VIEW
from repro.programs.labeling import run_worker_labeling
from repro.programs.summation import run_sum2
from repro.workloads import stripe_image

A, B, C = variables("a b c")

NAMES = ("r", "s")
VALUES = st.integers(min_value=0, max_value=3)

rows = st.lists(
    st.tuples(st.sampled_from(NAMES), VALUES, VALUES), min_size=0, max_size=12
)

fields = st.one_of(
    st.just(ANY),
    st.sampled_from((A, B, C)),
    VALUES,
)

atoms = st.tuples(st.sampled_from(NAMES), fields, fields).map(
    lambda t: P[t[0], t[1], t[2]]
)

pattern_lists = st.lists(atoms, min_size=1, max_size=3)


def space_of(tuples):
    ds = Dataspace()
    ds.insert_many(tuples)
    return ds


def canonical(matches):
    return sorted(
        (tuple(sorted(b.items())), tuple(sorted(i.tid for i in insts)))
        for b, insts in matches
    )


def planner_window(ds):
    window = FULL_VIEW.window(ds)
    window.planner = QueryPlanner(ds)
    return window


class TestJointMatchDifferential:
    @given(rows, pattern_lists)
    @settings(max_examples=60, deadline=None)
    def test_planned_enumeration_equals_naive(self, tuples, patterns):
        ds = space_of(tuples)
        naive = canonical(iter_joint_matches(ds, patterns, {}))
        planned = canonical(QueryPlanner(ds).iter_matches(ds, patterns, {}))
        assert planned == naive

    @given(rows, pattern_lists, st.dictionaries(st.sampled_from("ab"), VALUES))
    @settings(max_examples=60, deadline=None)
    def test_differential_under_prebound_variables(self, tuples, patterns, bound):
        ds = space_of(tuples)
        naive = canonical(iter_joint_matches(ds, patterns, bound))
        planned = canonical(QueryPlanner(ds).iter_matches(ds, patterns, bound))
        assert planned == naive

    @given(rows, pattern_lists, st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_planned_enumeration_is_seed_deterministic(self, tuples, patterns, seed):
        ds = space_of(tuples)
        planner = QueryPlanner(ds)
        one = canonical(
            planner.iter_matches(ds, patterns, {}, random.Random(seed))
        )
        two = canonical(
            planner.iter_matches(ds, patterns, {}, random.Random(seed))
        )
        assert one == two


class TestQueryDifferential:
    @given(rows, pattern_lists, st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_exists_verdicts_agree(self, tuples, patterns, seed):
        ds = space_of(tuples)
        q = Query("exists", (A, B, C), patterns)
        on = q.evaluate(planner_window(ds), {}, random.Random(seed))
        off = q.evaluate(FULL_VIEW.window(ds), {}, random.Random(seed))
        assert on.success == off.success

    @given(rows, pattern_lists, st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_negated_verdicts_agree(self, tuples, patterns, seed):
        ds = space_of(tuples)
        q = Query("exists", (), patterns, negated=True)
        on = q.evaluate(planner_window(ds), {}, random.Random(seed))
        off = q.evaluate(FULL_VIEW.window(ds), {}, random.Random(seed))
        assert on.success == off.success

    @given(rows, pattern_lists, st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_forall_read_only_match_sets_agree(self, tuples, patterns, seed):
        # Without retraction the greedy enumeration accepts *every* match,
        # so the committed binding set must be order-independent.
        ds = space_of(tuples)
        q = Query("forall", (A, B, C), patterns)
        on = q.evaluate(planner_window(ds), {}, random.Random(seed))
        off = q.evaluate(FULL_VIEW.window(ds), {}, random.Random(seed))
        assert on.success and off.success
        sig = lambda r: sorted(  # noqa: E731
            tuple(sorted(m.bindings.items())) for m in r.matches
        )
        assert sig(on) == sig(off)

    @given(rows, pattern_lists, st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_forall_retracting_stays_disjoint(self, tuples, patterns, seed):
        # Greedy maximality under retraction: accepted matches retract
        # pairwise-disjoint instances on both paths (the committed *sets*
        # may legitimately differ between enumeration orders).
        from repro.core.query import QueryAtom

        ds = space_of(tuples)
        q = Query(
            "forall", (A, B, C), [QueryAtom(p, retract=True) for p in patterns]
        )
        for window in (planner_window(ds), FULL_VIEW.window(ds)):
            result = q.evaluate(window, {}, random.Random(seed))
            assert result.success
            used = [i.tid for m in result.matches for i in m.retracted]
            assert len(used) == len(set(used))


class TestProgramDifferential:
    @given(
        st.integers(1, 3).flatmap(
            lambda a: st.lists(
                st.integers(-50, 50), min_size=2**a, max_size=2**a
            )
        ),
        st.integers(0, 99),
        st.sampled_from(["live", "group"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_summation_state_agrees_across_planner_modes(self, values, seed, commit):
        on = run_sum2(values, seed=seed, commit=commit, plan="on")
        off = run_sum2(values, seed=seed, commit=commit, plan="off")
        assert on.total == off.total == sum(values)
        assert on.engine.dataspace.multiset() == off.engine.dataspace.multiset()
        assert (off.result.plan_hits, off.result.plan_misses) == (0, 0)
        assert on.result.plan_misses >= 1

    @given(st.integers(0, 99))
    @settings(max_examples=8, deadline=None)
    def test_summation_is_seed_deterministic_with_planner(self, seed):
        one = run_sum2([3, 1, 4, 1, 5, 9, 2, 6], seed=seed, plan="on")
        two = run_sum2([3, 1, 4, 1, 5, 9, 2, 6], seed=seed, plan="on")
        assert one.total == two.total
        assert one.result.steps == two.result.steps
        assert one.engine.dataspace.snapshot() == two.engine.dataspace.snapshot()
        assert (one.result.plan_hits, one.result.plan_misses) == (
            two.result.plan_hits,
            two.result.plan_misses,
        )

    @given(st.integers(0, 9))
    @settings(max_examples=4, deadline=None)
    def test_labeling_agrees_across_planner_modes(self, seed):
        image = stripe_image(3, 3, stripe=1)
        on = run_worker_labeling(image, seed=seed, plan="on")
        off = run_worker_labeling(image, seed=seed, plan="off")
        assert on.labels == off.labels
