"""Unit tests for transaction actions (repro.core.actions)."""

import pytest

from repro.core.actions import (
    ABORT,
    EXIT,
    SKIP,
    Abort,
    AssertTuple,
    CallPython,
    Exit,
    Let,
    Skip,
    Spawn,
    assert_tuple,
    let,
    spawn,
    validate_actions,
)
from repro.core.expressions import Var
from repro.core.patterns import P, Pattern
from repro.errors import ActionError


class TestConstruction:
    def test_let_accepts_var_or_name(self):
        a = Var("a")
        assert Let(a, 1).name == "a"
        assert Let("N", a).name == "N"
        assert let("N", a + 1).name == "N"

    def test_assert_tuple_from_fields(self):
        action = assert_tuple("found", Var("a"))
        assert isinstance(action.pattern, Pattern)
        assert action.pattern.arity == 2

    def test_assert_tuple_from_prebuilt_pattern(self):
        pat = P["found", 1]
        assert assert_tuple(pat).pattern is pat

    def test_spawn_lifts_arguments(self):
        action = spawn("Search", 0, Var("prop"))
        assert action.process_name == "Search"
        assert len(action.args) == 2

    def test_singletons(self):
        assert isinstance(EXIT, Exit)
        assert isinstance(ABORT, Abort)
        assert isinstance(SKIP, Skip)


class TestPerMatchClassification:
    def test_per_match_actions(self):
        assert AssertTuple(P["x"]).per_match
        assert Spawn("P").per_match
        assert CallPython(lambda env: None).per_match

    def test_once_actions(self):
        assert not Let("n", 1).per_match
        assert not EXIT.per_match
        assert not ABORT.per_match
        assert not SKIP.per_match


class TestValidation:
    def test_let_under_forall_rejected(self):
        with pytest.raises(ActionError):
            validate_actions((Let("n", 1),), "forall")

    def test_let_under_exists_allowed(self):
        validate_actions((Let("n", 1),), "exists")

    def test_assert_under_forall_allowed(self):
        validate_actions((AssertTuple(P["x"]),), "forall")


class TestReprs:
    def test_readable_reprs(self):
        assert repr(let("N", Var("a"))) == "let N = a"
        assert repr(EXIT) == "exit"
        assert repr(ABORT) == "abort"
        assert repr(SKIP) == "skip"
        assert repr(spawn("Sum1", 2, 1)) == "Sum1(2,1)"
        assert "assert" in repr(assert_tuple("x", 1))
