"""Unit tests for tuple instances and identifiers (repro.core.tuples)."""

import pytest

from repro.core.tuples import TupleId, make_tuple
from repro.errors import ArityError, ValueDomainError


class TestTupleId:
    def test_identity_fields(self):
        tid = TupleId(serial=4, owner=2)
        assert tid.serial == 4
        assert tid.owner == 2

    def test_ids_order_by_serial_first(self):
        assert TupleId(1, 9) < TupleId(2, 0)

    def test_repr_mentions_serial_and_owner(self):
        assert repr(TupleId(3, 7)) == "#3@7"

    def test_hashable_and_equal_by_value(self):
        assert TupleId(1, 1) == TupleId(1, 1)
        assert len({TupleId(1, 1), TupleId(1, 1)}) == 1


class TestMakeTuple:
    def test_basic_construction(self):
        inst = make_tuple(("year", 87), serial=1, owner=5)
        assert inst.values == ("year", 87)
        assert inst.arity == 2
        assert inst.owner == 5

    def test_owner_determined_from_identifier(self):
        # "the owner may be determined by examining the unique tuple identifier"
        inst = make_tuple(("x",), serial=9, owner=3)
        assert inst.tid.owner == inst.owner == 3

    def test_empty_tuple_rejected(self):
        with pytest.raises(ArityError):
            make_tuple((), serial=1, owner=0)

    def test_bad_value_rejected(self):
        with pytest.raises(ValueDomainError):
            make_tuple(("ok", [1, 2]), serial=1, owner=0)

    def test_sequence_protocol(self):
        inst = make_tuple((1, 2, 3), serial=1, owner=0)
        assert len(inst) == 3
        assert inst[1] == 2
        assert list(inst) == [1, 2, 3]

    def test_instances_with_same_values_differ_by_id(self):
        a = make_tuple(("year", 87), serial=1, owner=0)
        b = make_tuple(("year", 87), serial=2, owner=0)
        assert a.values == b.values
        assert a.tid != b.tid
