"""Columnar ≡ object: the differential suite for the SoA backend.

The columnar store claims to be *observably identical* to the per-tuple
object store — same serials and versions, the same candidate **order**
(which feeds the seeded arbitration RNG), the same journal windows, and
at the engine level bit-identical program state and shard-independent
``RunResult`` counters under both commit modes, with and without shard
partitioning and worker pools.  Random op scripts and random programs
drive both backends side by side and assert the full observable surface
matches, mirroring the shards≡single suite in
``test_storage_properties``.
"""

from hypothesis import given, settings, strategies as st

from repro.core.actions import assert_tuple
from repro.core.dataspace import Dataspace
from repro.core.expressions import Var
from repro.core.patterns import P, pattern
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed
from repro.runtime.engine import Engine

a = Var("a")
b = Var("b")
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _changes_repr(changes):
    return [
        (
            c.kind,
            c.version,
            [i.tid for i in c.asserted],
            [i.tid for i in c.retracted],
        )
        for c in changes
    ]


# ---------------------------------------------------------------------------
# dataspace-level differential property
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "retract", "batch", "retract_batch"]),
        st.integers(min_value=0, max_value=6),  # community
        st.integers(min_value=0, max_value=9),  # payload
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(script=ops, shards=st.sampled_from(["single", 3]))
def test_columnar_dataspace_is_observably_object(script, shards):
    obj = Dataspace(shards=shards)
    col = Dataspace(shards=shards, store="columnar")
    for op, c, n in script:
        if op == "insert":
            obj.insert((f"c{c}", n))
            col.insert((f"c{c}", n))
        elif op == "batch":
            rows = [(f"c{c}", n), (f"c{(c + 1) % 7}", n, n)]
            obj.insert_many(rows)
            col.insert_many(rows)
        elif op == "retract_batch":  # oldest two, in one event
            tids = sorted(obj.tids(), key=lambda t: t.serial)[:2]
            if tids:
                obj.retract_many(tids)
                col.retract_many(tids)
        else:  # retract the oldest instance, if any
            tids = sorted(obj.tids(), key=lambda t: t.serial)
            if tids:
                obj.retract(tids[0])
                col.retract(tids[0])
    assert col.store_kind == "columnar" and obj.store_kind == "object"
    assert col.serial == obj.serial
    assert col.version == obj.version
    assert col.tids() == obj.tids()
    assert col.multiset() == obj.multiset()
    # identical iteration ORDER, not just contents
    assert [i.tid for i in col.instances()] == [i.tid for i in obj.instances()]
    for pat in (
        pattern("c1", Var("a")),
        pattern(Var("k"), 3),
        pattern(Var("k"), Var("a")),
        pattern("c2", 3, Var("a")),
        pattern(Var("k"), a, a),  # repeated variable: the kernel path
    ):
        assert [i.tid for i in col.candidates(pat)] == [
            i.tid for i in obj.candidates(pat)
        ]
        assert [i.tid for i in col.find_matching(pat)] == [
            i.tid for i in obj.find_matching(pat)
        ]
        assert col.count_matching(pat) == obj.count_matching(pat)
    for probes in ([(0, "c1")], [(1, 3)], [(0, "c2"), (1, 3)], []):
        assert [i.tid for i in col.candidates_probed(2, probes)] == [
            i.tid for i in obj.candidates_probed(2, probes)
        ]
    assert _changes_repr(col.changes_since(0)) == _changes_repr(
        obj.changes_since(0)
    )
    for arity in (2, 3):
        assert list(col.by_arity(arity)) == list(obj.by_arity(arity))
        assert col.arity_size(arity) == obj.arity_size(arity)


@settings(max_examples=15, deadline=None)
@given(script=ops)
def test_unindexed_columnar_matches_indexed_object(script):
    """Cross the two axes: unindexed columnar vs. indexed object."""
    obj = Dataspace()
    col = Dataspace(indexed=False, store="columnar")
    for op, c, n in script:
        if op in ("insert", "retract_batch"):
            obj.insert((f"c{c}", n))
            col.insert((f"c{c}", n))
        elif op == "batch":
            rows = [(f"c{c}", n), (f"c{(c + 1) % 7}", n, n)]
            obj.insert_many(rows)
            col.insert_many(rows)
        else:
            tids = sorted(obj.tids(), key=lambda t: t.serial)
            if tids:
                obj.retract(tids[0])
                col.retract(tids[0])
    assert col.multiset() == obj.multiset()
    for pat in (
        pattern("c3", Var("a")),
        pattern(Var("k"), a, a),
        pattern(Var("k"), Var("a")),
    ):
        assert [i.tid for i in col.find_matching(pat)] == [
            i.tid for i in obj.find_matching(pat)
        ]
        assert col.count_matching(pat) == obj.count_matching(pat)


# ---------------------------------------------------------------------------
# engine-level differential property
# ---------------------------------------------------------------------------

def community_worker() -> ProcessDefinition:
    return ProcessDefinition(
        "Worker",
        params=("c",),
        body=[
            delayed(exists(a).match(P[Var("c"), a].retract())).then(
                assert_tuple("done", Var("c"), a)
            )
        ],
    )


def pair_merger() -> ProcessDefinition:
    return ProcessDefinition(
        "Merger",
        params=("c",),
        body=[
            delayed(
                exists(a, b).match(
                    P[Var("c"), a].retract(), P[Var("c"), b].retract()
                )
            ).then(assert_tuple(Var("c"), a + b))
        ],
    )


def _counters(result):
    """The RunResult counters that must be backend-independent.

    ``result.store`` is deliberately absent: it names the backend and so
    differs between the two runs by construction.
    """
    return {
        "reason": result.reason,
        "steps": result.steps,
        "rounds": result.rounds,
        "commits": result.commits,
        "wakeups": result.wakeups,
        "precise": result.precise_wakeups,
        "spurious": result.spurious_wakeups,
        "wake_checks": result.wake_checks,
        "group_rounds": result.group_rounds,
        "batch_commits": result.batch_commits,
        "conflicts": result.conflicts,
        "max_batch": result.max_batch,
        "plan_hits": result.plan_hits,
        "plan_misses": result.plan_misses,
        "dataspace_size": result.dataspace_size,
    }


def _run(store, n_comm, n_work, seed, commit, shards="single", workers=None):
    engine = Engine(
        definitions=[community_worker(), pair_merger()],
        seed=seed,
        commit=commit,
        shards=shards,
        store=store,
        workers=workers,
    )
    engine.assert_tuples(
        [(f"c{c}", i) for c in range(n_comm) for i in range(n_work + 2)]
    )
    for c in range(n_comm):
        for __ in range(n_work):
            engine.start("Worker", (f"c{c}",))
        engine.start("Merger", (f"c{c}",))
    result = engine.run()
    return engine.dataspace.multiset(), _counters(result)


class TestEngineEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        n_comm=st.integers(min_value=1, max_value=4),
        n_work=st.integers(min_value=1, max_value=4),
        seed=seeds,
        commit=st.sampled_from(["live", "group"]),
    )
    def test_columnar_run_is_bit_identical(self, n_comm, n_work, seed, commit):
        object_run = _run("object", n_comm, n_work, seed, commit)
        columnar_run = _run("columnar", n_comm, n_work, seed, commit)
        assert columnar_run == object_run

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, commit=st.sampled_from(["live", "group"]))
    def test_columnar_sharded_run_is_bit_identical(self, seed, commit):
        object_run = _run("object", 3, 3, seed, commit, shards=4)
        columnar_run = _run("columnar", 3, 3, seed, commit, shards=4)
        assert columnar_run == object_run

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds, commit=st.sampled_from(["live", "group"]))
    def test_columnar_run_is_deterministic_per_seed(self, seed, commit):
        first = _run("columnar", 3, 3, seed, commit, shards=4)
        second = _run("columnar", 3, 3, seed, commit, shards=4)
        assert first == second

    @settings(max_examples=4, deadline=None)
    @given(seed=seeds)
    def test_columnar_worker_pool_run_is_bit_identical(self, seed):
        object_run = _run(
            "object", 3, 3, seed, "group", shards=4, workers=2
        )
        columnar_run = _run(
            "columnar", 3, 3, seed, "group", shards=4, workers=2
        )
        assert columnar_run == object_run
