"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.dataspace import Dataspace
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.query import exists, forall, no
from repro.core.views import FULL_VIEW, View, import_rule
from repro.programs import run_sum3
from repro.workloads import property_list_rows
from repro.programs import run_sort

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

scalars = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet="abcxyz", min_size=1, max_size=4),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)

value_tuples = st.lists(scalars, min_size=1, max_size=4).map(tuple)


class TestDataspaceProperties:
    @given(st.lists(value_tuples, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_insert_then_full_retract_leaves_empty(self, rows):
        ds = Dataspace()
        instances = [ds.insert(row) for row in rows]
        assert len(ds) == len(rows)
        for inst in instances:
            ds.retract(inst.tid)
        assert len(ds) == 0
        assert ds.snapshot() == []
        # all indexes fully cleaned
        assert not ds._by_arity and not ds._by_field

    @given(st.lists(value_tuples, max_size=25), st.data())
    @settings(max_examples=60, deadline=None)
    def test_multiset_is_insertion_invariant(self, rows, data):
        ds = Dataspace()
        for row in rows:
            ds.insert(row)
        counts: dict = {}
        for row in rows:
            counts[row] = counts.get(row, 0) + 1
        assert ds.multiset() == counts

    @given(st.lists(value_tuples, min_size=1, max_size=25), st.data())
    @settings(max_examples=60, deadline=None)
    def test_candidates_superset_of_matches(self, rows, data):
        ds = Dataspace()
        for row in rows:
            ds.insert(row)
        probe = data.draw(st.sampled_from(rows))
        pat = P[tuple(probe)] if len(probe) == 1 else P[probe]
        matching = {i.tid for i in ds.find_matching(pat)}
        candidates = {i.tid for i in ds.candidates(pat)}
        assert matching <= candidates
        assert len(matching) >= 1  # the probe itself matches

    @given(st.lists(value_tuples, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_version_strictly_monotone(self, rows):
        ds = Dataspace()
        seen = [ds.version]
        for row in rows:
            ds.insert(row)
            seen.append(ds.version)
        assert seen == sorted(set(seen))


class TestPatternProperties:
    @given(value_tuples)
    @settings(max_examples=80, deadline=None)
    def test_all_wildcards_match_anything(self, row):
        pat = P[tuple(ANY for __ in row)]
        assert pat.match(row, {}) == {}

    @given(value_tuples)
    @settings(max_examples=80, deadline=None)
    def test_self_literal_pattern_matches_itself(self, row):
        pat = P[row] if len(row) > 1 else P[row[0]]
        assert pat.match(row, {}) == {}

    @given(value_tuples)
    @settings(max_examples=80, deadline=None)
    def test_variable_pattern_binds_every_field(self, row):
        vs = variables(" ".join(f"v{i}" for i in range(len(row))))
        pat = P[vs if len(vs) > 1 else vs[0]]
        got = pat.match(row, {})
        assert got == {f"v{i}": row[i] for i in range(len(row))}

    @given(value_tuples, value_tuples)
    @settings(max_examples=80, deadline=None)
    def test_arity_mismatch_never_matches(self, a, b):
        if len(a) == len(b):
            return
        pat = P[tuple(ANY for __ in a)]
        assert pat.match(b, {}) is None


class TestQueryProperties:
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_forall_retract_partitions_dataspace(self, values):
        """∀ with a filter retracts exactly the matching instances."""
        ds = Dataspace()
        for v in values:
            ds.insert(("n", v))
        a = Var("a")
        q = forall(a).match(P["n", a].retract()).such_that(a > 0).build()
        result = q.evaluate(FULL_VIEW.window(ds, {}))
        assert result.success
        positives = [v for v in values if v > 0]
        assert len(result.all_retracted()) == len(positives)
        for inst in result.all_retracted():
            ds.retract(inst.tid)
        assert sorted(i.values[1] for i in ds.instances()) == sorted(
            v for v in values if v <= 0
        )

    @given(st.lists(st.integers(0, 20), max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_no_is_complement_of_exists(self, values):
        ds = Dataspace()
        for v in values:
            ds.insert(("n", v))
        window = FULL_VIEW.window(ds, {})
        present = exists().match(P["n", 7]).build().evaluate(window).success
        absent = no(P["n", 7]).evaluate(window).success
        assert present != absent
        assert present == (7 in values)


class TestViewProperties:
    @given(st.lists(value_tuples, max_size=25), st.integers(0, 3))
    @settings(max_examples=50, deadline=None)
    def test_window_is_subset_of_dataspace(self, rows, arity_pick):
        ds = Dataspace()
        for row in rows:
            ds.insert(row)
        arity = arity_pick + 1
        view = View(imports=[P[tuple(ANY for __ in range(arity))]])
        window = view.window(ds)
        footprint = window.footprint()
        assert footprint <= ds.tids()
        # footprint = exactly the instances of that arity
        assert footprint == {i.tid for i in ds.instances() if i.arity == arity}

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_guarded_import_equals_filter(self, values):
        ds = Dataspace()
        for v in values:
            ds.insert(("n", v))
        a = Var("a")
        view = View(imports=[import_rule("n", a, guard=(a >= 0))])
        window = view.window(ds)
        imported = sorted(i.values[1] for i in window.instances())
        assert imported == sorted(v for v in values if v >= 0)


class TestProgramProperties:
    @given(st.lists(st.integers(-99, 99), min_size=1, max_size=24), st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_sum3_equals_python_sum(self, values, seed):
        out = run_sum3(values, seed=seed)
        assert out.total == sum(values)
        assert out.result.commits == len(values) - 1

    @given(
        st.lists(
            st.text(alphabet="abcdef", min_size=1, max_size=3),
            min_size=1,
            max_size=7,
            unique=True,
        ),
        st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_distributed_sort_equals_sorted(self, names, seed):
        rows = property_list_rows([(n, f"v-{n}") for n in names])
        out = run_sort(rows, seed=seed)
        assert out.answer == sorted(names)
