"""Supervision: restart policies, backoff in rounds, lineage budgets."""

import pytest

from repro.core.actions import assert_tuple
from repro.core.expressions import Var
from repro.core.patterns import P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed
from repro.errors import SupervisionError
from repro.runtime import Engine, RestartPolicy, Supervisor
from repro.runtime.events import ProcessRestarted, SupervisorEscalated, Trace

a = Var("a")


def taker(name="Taker", hops=1):
    return ProcessDefinition(
        name,
        body=[
            delayed(exists(a).match(P["src", a].retract())).then(assert_tuple("dst", a))
            for __ in range(hops)
        ],
    )


class TestRestartPolicy:
    def test_defaults(self):
        policy = RestartPolicy()
        assert policy.policy == "never"

    def test_backoff_doubles_and_caps(self):
        policy = RestartPolicy(policy="restart", backoff_base=2, backoff_cap=10)
        assert [policy.backoff(g) for g in range(5)] == [2, 4, 8, 10, 10]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"policy": "resume"},
            {"max_restarts": -1},
            {"backoff_base": -1},
            {"backoff_base": 8, "backoff_cap": 4},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(SupervisionError):
            RestartPolicy(**kwargs)

    def test_supervisor_rejects_non_policy_values(self):
        with pytest.raises(SupervisionError):
            Supervisor({"W": "restart"})
        with pytest.raises(SupervisionError):
            Supervisor("restart")


class TestEngineRestart:
    def _engine(self, faults, supervision, n_items=3, hops=2, **kw):
        engine = Engine(
            definitions=[taker(hops=hops)], seed=1, on_deadlock="return",
            faults=faults, supervision=supervision, **kw,
        )
        engine.assert_tuples([("src", i) for i in range(n_items)])
        engine.start("Taker")
        return engine

    def test_one_shot_crash_restarts_and_recovers(self):
        trace = Trace(detail=True)
        engine = self._engine(
            "pre-commit:crash:name=Taker:at=2:max=1",
            RestartPolicy(policy="restart"),
            trace=trace,
        )
        result = engine.run()
        assert result.reason == "completed"
        assert (result.crashes, result.restarts, result.recoveries) == (1, 1, 1)
        (event,) = list(trace.of_kind(ProcessRestarted))
        assert event.name == "Taker" and event.generation == 1
        # the replacement re-runs the whole body from the start: the crashed
        # instance committed once, the replacement twice more (state lives in
        # the dataspace, not the process)
        state = engine.dataspace.multiset()
        assert sum(v for k, v in state.items() if k[0] == "dst") == 3

    def test_per_definition_policy_mapping(self):
        engine = self._engine(
            "pre-commit:crash:name=Taker:at=2:max=1",
            {"Taker": RestartPolicy(policy="restart")},
        )
        assert engine.run().reason == "completed"

    def test_unsupervised_crash_is_final(self):
        engine = self._engine("pre-commit:crash:name=Taker:at=2:max=1", None)
        result = engine.run()
        assert result.reason == "crashed"
        assert (result.crashes, result.restarts) == (1, 0)

    def test_deterministic_crasher_escalates(self):
        """at= counts per pid, so every replacement crashes again and the
        lineage burns through its budget."""
        trace = Trace(detail=True)
        engine = self._engine(
            "pre-commit:crash:name=Taker:at=1",
            RestartPolicy(policy="restart", max_restarts=2),
            n_items=8,
            trace=trace,
        )
        result = engine.run()
        assert result.reason == "escalated"
        assert (result.crashes, result.restarts) == (3, 2)
        (event,) = list(trace.of_kind(SupervisorEscalated))
        assert event.name == "Taker" and event.restarts == 2

    def test_backoff_is_measured_in_rounds(self):
        trace = Trace(detail=True)
        engine = self._engine(
            "pre-commit:crash:name=Taker:at=1:max=1",
            RestartPolicy(policy="restart", backoff_base=8),
            trace=trace,
        )
        from repro.runtime.events import ProcessCrashed

        result = engine.run()
        assert result.reason == "completed"
        (crash,) = list(trace.of_kind(ProcessCrashed))
        (restart,) = list(trace.of_kind(ProcessRestarted))
        assert restart.round - crash.round >= 8  # waited out the backoff

    def test_restart_in_group_mode(self):
        engine = self._engine(
            "pre-commit:crash:name=Taker:at=2:max=1",
            RestartPolicy(policy="restart"),
            commit="group",
            validate="serial",
        )
        result = engine.run()
        assert result.reason == "completed"
        assert result.restarts == 1 and result.recoveries == 1

    def test_restart_replays_args(self):
        """The replacement is spawned with the crashed instance's args."""
        prog = ProcessDefinition(
            "Par",
            params=("k",),
            body=[
                delayed(exists(a).match(P["src", a].retract())).then(
                    assert_tuple("dst", Var("k"), a)
                ),
                delayed(exists(a).match(P["src", a].retract())).then(
                    assert_tuple("dst", Var("k"), a)
                ),
            ],
        )
        engine = Engine(
            definitions=[prog], seed=1, on_deadlock="return",
            faults="pre-commit:crash:name=Par:at=2:max=1",
            supervision=RestartPolicy(policy="restart"),
        )
        engine.assert_tuples([("src", 1), ("src", 2), ("src", 3)])
        engine.start("Par", (42,))
        result = engine.run()
        assert result.reason == "completed"
        state = engine.dataspace.multiset()
        assert sum(v for k, v in state.items() if k[:1] == ("dst",) and k[1] == 42) == 3


class TestSupervisorUnit:
    def test_lineage_budget_spans_replacements(self):
        from repro.core.process import ProcessInstance

        definition = taker()
        supervisor = Supervisor(RestartPolicy(policy="restart", max_restarts=2))
        p1 = ProcessInstance(1, definition, ())
        assert supervisor.notify_crash(p1, round=0) == "queued"
        (entry,) = supervisor.take_due(10)
        supervisor.adopt(entry, 2)
        p2 = ProcessInstance(2, definition, ())
        assert supervisor.notify_crash(p2, round=10) == "queued"
        (entry,) = supervisor.take_due(100)
        supervisor.adopt(entry, 3)
        p3 = ProcessInstance(3, definition, ())
        assert supervisor.notify_crash(p3, round=100) == "escalate"
        assert supervisor.escalated == "Taker"
        assert supervisor.restarts_for(3) == 2

    def test_take_due_respects_due_round(self):
        supervisor = Supervisor(RestartPolicy(policy="restart", backoff_base=4))
        p = __import__("repro.core.process", fromlist=["ProcessInstance"]).ProcessInstance(
            1, taker(), ()
        )
        supervisor.notify_crash(p, round=10)
        assert supervisor.take_due(12) == []
        assert supervisor.earliest_due() == 14
        (entry,) = supervisor.take_due(14)
        assert entry.due_round == 14 and entry.generation == 1
