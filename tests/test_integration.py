"""Cross-cutting integration tests: whole-system scenarios."""


from repro.core.actions import EXIT, assert_tuple, spawn
from repro.core.constructs import guarded, repeat, replicate
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import Membership, exists, no
from repro.core.transactions import consensus, delayed, immediate
from repro.runtime.engine import Engine
from repro.runtime.events import Trace


class TestProducerConsumerPipeline:
    def test_three_stage_pipeline(self):
        """source -> squarer -> sink, coupled only through the dataspace."""
        a = Var("a")
        source = ProcessDefinition(
            "Source",
            params=("n",),
            body=[
                repeat(
                    guarded(
                        immediate(
                            exists(a).match(P["seed", a].retract())
                        ).then(assert_tuple("raw", a))
                    )
                )
            ],
        )
        square = ProcessDefinition(
            "Square",
            body=[
                replicate(
                    guarded(
                        delayed(exists(a).match(P["raw", a].retract())).then(
                            assert_tuple("squared", a * a)
                        )
                    ),
                    guarded(delayed(exists().match(P["eof"].retract())).then(EXIT)),
                )
            ],
        )
        total = []
        sink = ProcessDefinition(
            "Sink",
            params=("count",),
            body=[
                repeat(
                    guarded(
                        delayed(exists(a).match(P["squared", a].retract())).then(
                            assert_tuple("acc", a)
                        )
                    ),
                    guarded(
                        immediate(
                            exists().such_that(
                                ~Membership(P["squared", ANY])
                                & Membership(P["all_done"])
                            )
                        ).then(EXIT)
                    ),
                ),
            ],
        )
        driver = ProcessDefinition(
            "Driver",
            body=[
                # NB: no(p1, p2) negates a JOINT match; "both absent" needs
                # a conjunction of negated memberships instead
                delayed(
                    exists().such_that(
                        ~Membership(P["raw", ANY]) & ~Membership(P["seed", ANY])
                    )
                ).then(assert_tuple("eof"), assert_tuple("all_done")),
            ],
        )
        engine = Engine(definitions=[source, square, sink, driver], seed=11)
        n = 10
        engine.assert_tuples([("seed", i) for i in range(n)])
        engine.start("Source", (n,))
        engine.start("Square")
        engine.start("Sink", (n,))
        engine.start("Driver")
        result = engine.run(max_steps=100_000)
        assert result.completed
        got = sorted(i.values[1] for i in engine.dataspace.find_matching(P["acc", ANY]))
        assert got == sorted(i * i for i in range(n))


class TestBarberShop:
    def test_sleeping_barber_flavour(self):
        """Customers queue as tuples; one barber serves all of them."""
        c = Var("c")
        barber = ProcessDefinition(
            "Barber",
            body=[
                repeat(
                    guarded(
                        immediate(exists(c).match(P["waiting", c].retract())).then(
                            assert_tuple("served", c)
                        )
                    ),
                    guarded(
                        immediate(no(P["waiting", ANY]) ).then(EXIT)
                    ),
                )
            ],
        )
        engine = Engine(definitions=[barber], seed=3)
        engine.assert_tuples([("waiting", i) for i in range(9)])
        engine.start("Barber")
        assert engine.run().completed
        assert engine.dataspace.count_matching(P["served", ANY]) == 9


class TestDeterminismAcrossSubsystems:
    def _run(self, seed):
        a, b = variables("a b")
        mixer = ProcessDefinition(
            "Mixer",
            body=[
                replicate(
                    guarded(
                        immediate(
                            exists(a, b)
                            .match(P["n", a].retract(), P["n", b].retract())
                            .such_that(a != b)
                        ).then(assert_tuple("n", a - b))
                    )
                )
            ],
        )
        engine = Engine(definitions=[mixer], seed=seed, trace=Trace(detail=True))
        engine.assert_tuples([("n", i) for i in range(9)])
        engine.start("Mixer")
        engine.run()
        return engine

    def test_trace_identical_for_same_seed(self):
        e1, e2 = self._run(5), self._run(5)
        assert e1.dataspace.snapshot() == e2.dataspace.snapshot()
        assert len(e1.trace.events) == len(e2.trace.events)
        assert [type(a) for a in e1.trace.events] == [type(b) for b in e2.trace.events]

    def test_nondeterministic_outcome_varies_with_seed(self):
        results = {self._run(seed).dataspace.snapshot()[0][1] for seed in range(8)}
        # subtraction is order-sensitive: different schedules, different values
        assert len(results) > 1


class TestOwnershipAndGenealogy:
    def test_spawner_chain_recorded(self):
        child = ProcessDefinition(
            "Child", body=[immediate().then(assert_tuple("leaf", 1))]
        )
        parent = ProcessDefinition("Parent", body=[immediate().then(spawn("Child"))])
        engine = Engine(definitions=[parent, child], seed=1)
        engine.start("Parent")
        engine.run()
        society = list(engine.society.all_instances())
        child_inst = next(p for p in society if p.name == "Child")
        parent_inst = next(p for p in society if p.name == "Parent")
        assert child_inst.spawner == parent_inst.pid

    def test_tuple_owner_traceable_to_process(self):
        child = ProcessDefinition(
            "Child", body=[immediate().then(assert_tuple("leaf", 1))]
        )
        parent = ProcessDefinition("Parent", body=[immediate().then(spawn("Child"))])
        engine = Engine(definitions=[parent, child], seed=1)
        engine.start("Parent")
        engine.run()
        inst = engine.dataspace.find_matching(P["leaf", 1])[0]
        assert engine.society.get(inst.owner).name == "Child"


class TestMixedModeWorkflow:
    def test_gather_scatter_with_consensus_barrier(self):
        """Workers gather partial sums, synchronize, then one reporter
        publishes the grand total — exercising immediate + delayed +
        consensus + views in one program."""
        a, b = variables("a b")
        g = Var("g")
        worker = ProcessDefinition(
            "Worker",
            params=("g",),
            imports=[P[g, ANY], P["total", g, ANY]],
            exports=[P[g, ANY], P["total", g, ANY]],
            body=[
                repeat(
                    guarded(
                        immediate(
                            exists(a, b).match(
                                P[g, a].retract(), P[g, b].retract()
                            )
                        ).then(assert_tuple(g, a + b))
                    )
                ),
                consensus(exists(a).match(P[g, a])).then(
                    assert_tuple("total", g, a)
                ),
            ],
        )
        engine = Engine(definitions=[worker], seed=13)
        engine.assert_tuples([("red", i) for i in range(1, 5)])
        engine.assert_tuples([("blue", i) for i in range(1, 7)])
        engine.start("Worker", ("red",))
        engine.start("Worker", ("blue",))
        result = engine.run()
        assert result.completed
        assert result.consensus_rounds == 2  # one per colour community
        totals = {
            i.values[1]: i.values[2]
            for i in engine.dataspace.find_matching(P["total", ANY, ANY])
        }
        assert totals == {"red": 10, "blue": 21}
