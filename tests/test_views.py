"""Unit tests for views and windows (repro.core.views)."""

import pytest

from repro.core.dataspace import Dataspace
from repro.core.expressions import Var, fn
from repro.core.patterns import ANY, P
from repro.core.views import FULL_VIEW, View, ViewRule, import_rule
from repro.errors import ViewError


@pytest.fixture
def mixed_space():
    ds = Dataspace()
    ds.insert_many([("year", y) for y in (85, 87, 88, 90)])
    ds.insert_many([("day", d) for d in (1, 2)])
    return ds


class TestViewRule:
    def test_paper_guarded_rule(self, mixed_space):
        # IMPORT α : α <= 87 => <year, α>
        a = Var("a")
        rule = import_rule("year", a, guard=(a <= 87))
        assert rule.covers(("year", 85), mixed_space, {})
        assert rule.covers(("year", 87), mixed_space, {})
        assert not rule.covers(("year", 88), mixed_space, {})
        assert not rule.covers(("day", 1), mixed_space, {})

    def test_rule_with_process_parameters(self, mixed_space):
        node = Var("node")
        rule = import_rule(node, ANY)
        assert rule.covers(("year", 85), mixed_space, {"node": "year"})
        assert not rule.covers(("year", 85), mixed_space, {"node": "day"})

    def test_where_context_atoms(self, mixed_space):
        # import <day, d> only while some <year, 90> exists in D
        d = Var("d")
        rule = import_rule("day", d, where=[P["year", 90]])
        assert rule.covers(("day", 1), mixed_space, {})
        # remove the context tuple -> rule no longer covers
        tid = mixed_space.find_matching(P["year", 90])[0].tid
        mixed_space.retract(tid)
        assert not rule.covers(("day", 1), mixed_space, {})

    def test_where_variables_join_with_pattern(self, mixed_space):
        # cover <year, a> only if a matching <day, a> exists
        a = Var("a")
        rule = import_rule("year", a, where=[P["day", a]])
        mixed_space.insert(("day", 87))
        assert rule.covers(("year", 87), mixed_space, {})
        assert not rule.covers(("year", 90), mixed_space, {})

    def test_guard_with_host_predicate(self, mixed_space):
        a = Var("a")
        even = fn(lambda x: x % 2 == 0, "even")
        rule = import_rule("year", a, guard=even(a))
        assert rule.covers(("year", 88), mixed_space, {})
        assert not rule.covers(("year", 87), mixed_space, {})

    def test_rule_requires_pattern(self):
        with pytest.raises(ViewError):
            ViewRule("oops")  # type: ignore[arg-type]


class TestView:
    def test_full_view_unrestricted(self, mixed_space):
        assert FULL_VIEW.unrestricted
        assert FULL_VIEW.imports_value(("anything", 1, 2), mixed_space, {})
        assert FULL_VIEW.exports_value(("anything",), mixed_space, {})

    def test_import_restriction(self, mixed_space):
        view = View(imports=[P["year", ANY]])
        assert view.imports_value(("year", 85), mixed_space, {})
        assert not view.imports_value(("day", 1), mixed_space, {})
        # exports stay unrestricted when not given
        assert view.exports_value(("day", 9), mixed_space, {})

    def test_export_restriction(self, mixed_space):
        view = View(exports=[P["found", ANY]])
        assert view.exports_value(("found", 90), mixed_space, {})
        assert not view.exports_value(("year", 90), mixed_space, {})

    def test_multiple_rules_union(self, mixed_space):
        view = View(imports=[P["year", ANY], P["day", ANY]])
        assert view.imports_value(("year", 85), mixed_space, {})
        assert view.imports_value(("day", 1), mixed_space, {})
        assert not view.imports_value(("other",), mixed_space, {})

    def test_patterns_promoted_to_rules(self):
        view = View(imports=[P["x", ANY]])
        assert isinstance(view.imports[0], ViewRule)


class TestWindow:
    def test_window_is_import_intersection(self, mixed_space):
        # W = Import(p) ∩ D
        window = View(imports=[P["year", ANY]]).window(mixed_space)
        assert sorted(i.values for i in window.instances()) == [
            ("year", 85), ("year", 87), ("year", 88), ("year", 90),
        ]

    def test_candidates_filtered(self, mixed_space, abc):
        a, _, _ = abc
        window = View(imports=[P["year", ANY]]).window(mixed_space)
        assert window.candidates(P["day", a]) == []
        assert len(window.candidates(P["year", a])) == 4

    def test_window_with_guard(self, mixed_space, abc):
        a, _, _ = abc
        v = Var("v")
        window = View(imports=[import_rule("year", v, guard=(v <= 87))]).window(mixed_space)
        assert window.count_matching(P["year", a]) == 2

    def test_contains_tid(self, mixed_space):
        window = View(imports=[P["year", ANY]]).window(mixed_space)
        year_tid = mixed_space.find_matching(P["year", 85])[0].tid
        day_tid = mixed_space.find_matching(P["day", 1])[0].tid
        assert year_tid in window
        assert day_tid not in window

    def test_memo_refreshes_on_change(self, mixed_space):
        d = Var("d")
        window = View(imports=[import_rule("day", d, where=[P["year", 90]])]).window(mixed_space)
        day = mixed_space.find_matching(P["day", 1])[0]
        assert window.imports_instance(day)
        tid = mixed_space.find_matching(P["year", 90])[0].tid
        mixed_space.retract(tid)
        # configuration changed: the same instance is no longer imported
        assert not window.imports_instance(day)

    def test_footprint_and_overlap(self, mixed_space):
        w_years = View(imports=[P["year", ANY]]).window(mixed_space)
        w_days = View(imports=[P["day", ANY]]).window(mixed_space)
        w_all = FULL_VIEW.window(mixed_space)
        assert len(w_years.footprint()) == 4
        assert not w_years.overlaps(w_days)
        assert w_years.overlaps(w_all)
        assert w_all.overlaps(w_days)

    def test_overlap_requires_current_tuples(self):
        # Import sets may intersect as families, but `needs` is about
        # Import(p) ∩ Import(q) ∩ D — an EMPTY dataspace means no overlap.
        ds = Dataspace()
        w1 = View(imports=[P["x", ANY]]).window(ds)
        w2 = View(imports=[P["x", ANY]]).window(ds)
        assert not w1.overlaps(w2)
        ds.insert(("x", 1))
        assert w1.refresh().overlaps(w2.refresh())

    def test_exports_value_via_window(self, mixed_space):
        window = View(exports=[P["found", ANY]]).window(mixed_space)
        assert window.exports_value(("found", 1))
        assert not window.exports_value(("year", 1))

    def test_full_view_footprint_is_everything(self, mixed_space):
        window = FULL_VIEW.window(mixed_space)
        assert window.footprint() == mixed_space.tids()

    def test_params_reach_rules(self, mixed_space, abc):
        a, _, _ = abc
        tag = Var("tag")
        window = View(imports=[P[tag, ANY]]).window(mixed_space, {"tag": "day"})
        assert window.count_matching(P[ANY, a]) == 2
