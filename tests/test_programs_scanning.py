"""Integration tests: streaming (airborne-scan) region labeling."""

import pytest

from repro.core.patterns import ANY, P
from repro.programs import run_streaming_labeling
from repro.programs.scanning import SCANLINE, SCAN_DONE, SCAN_NEXT
from repro.workloads import random_blob_image, stripe_image


@pytest.fixture(scope="module")
def tall_run():
    # 6 stripes arriving over 12 scan lines
    return run_streaming_labeling(stripe_image(4, 12, stripe=2), seed=4)


class TestCorrectness:
    def test_labels_match_ground_truth(self, tall_run):
        assert tall_run.correct

    def test_blob_image(self):
        out = run_streaming_labeling(random_blob_image(5, 5, blobs=2, seed=9), seed=2)
        assert out.correct
        assert out.result.completed

    def test_staging_tuples_fully_consumed(self, tall_run):
        ds = tall_run.engine.dataspace
        assert ds.count_matching(P[SCANLINE, ANY, ANY, ANY]) == 0
        assert ds.count_matching(P[SCAN_NEXT, ANY]) == 0
        assert ds.count_matching(P[SCAN_DONE]) == 0

    def test_one_consensus_per_region(self, tall_run):
        assert tall_run.result.consensus_rounds == 6
        assert len(tall_run.completions) == 6


class TestIncrementality:
    def test_regions_complete_during_scan(self, tall_run):
        """The headline claim: regions announce completion while the
        scanner is still delivering lines further down the image."""
        assert tall_run.regions_done_before_scan_end() >= 3

    def test_completions_follow_scan_order(self, tall_run):
        """Stripes complete roughly top-to-bottom (they arrive that way)."""
        rounds = [r for __, r in tall_run.completions]
        assert rounds == sorted(rounds)
        labels = [label for label, __ in tall_run.completions]
        ys = [label[1] for label in labels]
        assert ys == sorted(ys)

    def test_no_premature_completion(self):
        """A region may not announce completion before its last pixel has
        been scanned: a single tall region can only complete after the
        final line (the paper's incomplete-information hazard)."""
        image = stripe_image(3, 6, stripe=6)  # ONE region spanning all lines
        out = run_streaming_labeling(image, seed=1)
        assert out.correct
        assert len(out.completions) == 1
        (__, completion_round), = out.completions
        assert completion_round >= out.scan_done_round


class TestDeterminism:
    def test_same_seed_same_completions(self):
        image = stripe_image(4, 8, stripe=2)
        a = run_streaming_labeling(image, seed=7)
        b = run_streaming_labeling(image, seed=7)
        assert a.completions == b.completions
        assert a.labels == b.labels
