"""Integration tests: the Section 3.3 region-labeling programs.

Image sizes are kept small — the worker model's label-propagation join is
quadratic in pixels and this is an interpreter, not a Connection Machine.
"""

import pytest

from repro.programs import (
    default_threshold,
    run_community_labeling,
    run_worker_labeling,
)
from repro.workloads import checkerboard_image, random_blob_image, stripe_image


class TestGroundTruth:
    def test_default_threshold_binary(self):
        t = default_threshold(128)
        assert t(200) == 1 and t(100) == 0


class TestWorkerModel:
    @pytest.mark.parametrize(
        "image",
        [
            stripe_image(4, 4, stripe=2),
            checkerboard_image(4, 4, square=2),
            random_blob_image(5, 5, blobs=2, seed=3),
        ],
        ids=["stripes", "checkerboard", "blobs"],
    )
    def test_labels_match_ground_truth(self, image):
        out = run_worker_labeling(image, seed=2)
        assert out.correct

    def test_single_process_society(self):
        out = run_worker_labeling(stripe_image(4, 4), seed=1)
        assert out.trace.counters.processes_created == 1

    def test_all_pixels_labeled(self):
        image = stripe_image(5, 3)
        out = run_worker_labeling(image, seed=1)
        assert len(out.labels) == 15

    def test_images_consumed(self):
        from repro.core.patterns import ANY, P
        from repro.programs.labeling import IMAGE

        out = run_worker_labeling(stripe_image(4, 4), seed=1)
        assert out.engine.dataspace.count_matching(P[IMAGE, ANY, ANY]) == 0

    def test_uniform_image_single_region(self):
        image = stripe_image(4, 4, stripe=4)  # one stripe = whole image
        out = run_worker_labeling(image, seed=1)
        assert out.correct
        assert out.region_count() == 1
        assert set(out.labels.values()) == {(3, 3)}


class TestCommunityModel:
    @pytest.mark.parametrize(
        "image",
        [
            stripe_image(4, 4, stripe=2),
            checkerboard_image(4, 4, square=2),
            random_blob_image(5, 5, blobs=2, seed=3),
        ],
        ids=["stripes", "checkerboard", "blobs"],
    )
    def test_labels_match_ground_truth(self, image):
        out = run_community_labeling(image, seed=2)
        assert out.correct

    def test_one_label_process_per_pixel(self):
        image = stripe_image(4, 3)
        out = run_community_labeling(image, seed=1)
        # 1 Threshold + 12 Label processes
        assert out.trace.counters.processes_created == 13

    def test_one_consensus_per_region(self):
        image = stripe_image(4, 4, stripe=2)  # 2 regions
        out = run_community_labeling(image, seed=1)
        assert out.result.consensus_rounds == out.region_count() == 2

    def test_completions_reported_per_region(self):
        image = stripe_image(6, 6, stripe=2)  # 3 regions
        out = run_community_labeling(image, seed=1)
        assert len(out.completions) == 3
        reported = {label for label, __ in out.completions}
        assert reported == set(out.expected.values())

    def test_thresholds_discarded_after_completion(self):
        from repro.core.patterns import ANY, P
        from repro.programs.labeling import THRESHOLD

        out = run_community_labeling(stripe_image(4, 4), seed=1)
        # "when the labeling is complete ... the threshold values are discarded"
        assert out.engine.dataspace.count_matching(P[THRESHOLD, ANY, ANY]) == 0

    def test_checkerboard_many_singleton_communities(self):
        image = checkerboard_image(4, 2, square=1)
        out = run_community_labeling(image, seed=1)
        assert out.correct
        assert out.result.consensus_rounds == 8  # every pixel its own region


class TestModelsAgree:
    @pytest.mark.parametrize("seed", [1, 9])
    def test_both_models_identical_labels(self, seed):
        image = random_blob_image(5, 5, blobs=2, seed=seed)
        worker = run_worker_labeling(image, seed=3)
        community = run_community_labeling(image, seed=3)
        assert worker.labels == community.labels == worker.expected
