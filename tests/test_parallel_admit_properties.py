"""Parallel admission differential: ``admit="parallel"`` ≡ serial.

Admission dispatch (``repro.runtime.rounds._dispatch_admission`` over
``repro.runtime.parallel``'s snapshot machinery) claims to be a pure
scheduling knob: shipping Phase B match evaluation to workers over cached
shard snapshots must be *unobservable* — program state down to instance
serials and owners, and every admit-independent ``RunResult`` counter
(including plan-cache hits: the walk consults the real planner for every
worker verdict it accepts), bit-identical to serial admission per seed.
This module proves the claim three ways:

* **property-based** — random community programs under random seeds,
  across live/group commit, shard counts, both store backends, and fault
  plans (including the ``admit-dispatch`` site), plus delta-refresh vs
  full-reship equivalence when a tiny journal forces snapshot re-ships;
* **deterministic fault paths** — each injected ``admit-dispatch``
  action (``worker-crash``, ``stale-snapshot``, ``garbage-footprint``)
  is absorbed by retry or validation fallback, counted, and leaves the
  run identical to serial, including full quarantine-to-serial
  degradation when the pool disables itself;
* **unit regressions** — ``ship_shard`` routes through ``__getstate__``
  explicitly (derived columnar structure never reaches the wire; lazy
  indexes and the eviction watermark survive the round trip),
  ``BaseStore.changes_since`` honours the watermark, the
  ``SnapshotShipper`` ships each blob once and re-ships after eviction,
  and ``prepare_match`` admits exactly the single-atom pure fragment.
"""

from __future__ import annotations

import pickle
import types

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import storage
from repro.core.actions import assert_tuple
from repro.core.dataspace import Dataspace, DataspaceChange
from repro.core.expressions import Var
from repro.core.patterns import P
from repro.core.query import Membership, exists
from repro.core.storage import ColumnarStore, TupleStore, resolve_shards
from repro.core.transactions import delayed
from repro.core.tuples import make_tuple
from repro.runtime.engine import Engine
from repro.runtime.parallel import (
    SnapshotShipper,
    load_shard,
    prepare_match,
    ship_shard,
)
from tests.test_parallel_properties import (
    _counters,
    _signature,
    community_worker,
    pair_merger,
)

a = Var("a")
b = Var("b")
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _run(
    workers,
    admit,
    n_comm,
    n_work,
    seed,
    commit,
    shards=4,
    store=None,
    faults=None,
    worker_timeout=None,
    obs=None,
):
    """One community run; the admission knob is the only variable."""
    engine = Engine(
        definitions=[community_worker(), pair_merger()],
        seed=seed,
        commit=commit,
        shards=shards,
        store=store,
        workers=workers,
        admit=admit,
        faults=faults,
        worker_timeout=worker_timeout,
        obs=obs,
        on_deadlock="return",
    )
    engine.assert_tuples(
        [(f"c{c}", i) for c in range(n_comm) for i in range(n_work + 2)]
    )
    for c in range(n_comm):
        for __ in range(n_work):
            engine.start("Worker", (f"c{c}",))
        engine.start("Merger", (f"c{c}",))
    result = engine.run()
    return engine, result


# ---------------------------------------------------------------------------
# property-based differential: admit="parallel" ≡ serial
# ---------------------------------------------------------------------------

class TestAdmitEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        n_comm=st.integers(min_value=1, max_value=4),
        n_work=st.integers(min_value=1, max_value=4),
        seed=seeds,
        commit=st.sampled_from(["live", "group"]),
        shards=st.sampled_from([2, 4]),
        store=st.sampled_from([None, "columnar"]),
    )
    def test_admit_parallel_is_bit_identical(
        self, n_comm, n_work, seed, commit, shards, store
    ):
        serial_engine, serial = _run(
            None, "serial", n_comm, n_work, seed, commit,
            shards=shards, store=store,
        )
        par_engine, par = _run(
            "thread:3", "parallel", n_comm, n_work, seed, commit,
            shards=shards, store=store,
        )
        assert _signature(par_engine) == _signature(serial_engine)
        assert _counters(par) == _counters(serial)

    @settings(max_examples=15, deadline=None)
    @given(
        n_comm=st.integers(min_value=2, max_value=4),
        seed=seeds,
        fault_seed=st.integers(min_value=0, max_value=99),
        site=st.sampled_from(
            [
                "pre-commit:crash:prob=0.2",
                "batch-admit:kill-round:prob=0.3",
                "post-match:abort:prob=0.2",
                "admit-dispatch:worker-crash:at=1",
                "admit-dispatch:stale-snapshot:prob=0.5",
                "admit-dispatch:garbage-footprint:at=1",
            ]
        ),
    )
    def test_equivalence_holds_under_faults(self, n_comm, seed, fault_seed, site):
        plan = f"seed={fault_seed}; {site}"
        serial_engine, serial = _run(
            None, "serial", n_comm, 3, seed, "group", faults=plan
        )
        par_engine, par = _run(
            "thread:3", "parallel", n_comm, 3, seed, "group", faults=plan
        )
        assert _signature(par_engine) == _signature(serial_engine)
        assert _counters(par) == _counters(serial)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_admit_run_is_deterministic_per_seed(self, seed):
        runs = [
            _run("thread:3", "parallel", 4, 3, seed, "group") for __ in range(2)
        ]
        (e1, r1), (e2, r2) = runs
        assert _signature(e1) == _signature(e2)
        assert _counters(r1) == _counters(r2)
        # Dispatch and snapshot bookkeeping are deterministic too.
        assert (
            r1.admit_rounds, r1.admit_tasks, r1.admit_candidates,
            r1.admit_fallbacks, r1.snapshot_ship_bytes,
            r1.snapshot_refreshes_delta, r1.snapshot_refreshes_full,
        ) == (
            r2.admit_rounds, r2.admit_tasks, r2.admit_candidates,
            r2.admit_fallbacks, r2.snapshot_ship_bytes,
            r2.snapshot_refreshes_delta, r2.snapshot_refreshes_full,
        )

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds, depth=st.sampled_from([4, 8, 16]))
    def test_delta_refresh_equals_full_reship(self, seed, depth):
        """Journal overflow forces full re-ships mid-run; the run must not
        notice.  Serial and parallel admission under the same tiny journal
        stay bit-identical, and the final state equals the default-depth
        serial state (journal depth is invisible to program semantics)."""
        baseline_engine, __ = _run(None, "serial", 4, 3, seed, "group")
        old = storage.JOURNAL_DEPTH
        storage.JOURNAL_DEPTH = depth
        try:
            serial_engine, serial = _run(None, "serial", 4, 3, seed, "group")
            par_engine, par = _run(
                "thread:3", "parallel", 4, 3, seed, "group"
            )
        finally:
            storage.JOURNAL_DEPTH = old
        assert _signature(par_engine) == _signature(serial_engine)
        assert _counters(par) == _counters(serial)
        assert _signature(serial_engine) == _signature(baseline_engine)


class TestAdmitDispatchIsLive:
    def test_dispatch_actually_fires(self):
        """The differential suite must not be vacuous: the canonical
        community shape really does ship admission tasks to workers."""
        __, result = _run("thread:3", "parallel", 4, 3, seed=7, commit="group")
        assert result.admit_rounds > 0
        assert result.admit_tasks > 0
        assert result.admit_candidates > 0
        assert result.snapshot_ship_bytes > 0

    def test_workers_one_is_inert(self):
        engine, result = _run(1, "parallel", 2, 2, seed=7, commit="group")
        assert engine.pool is None
        assert engine.snapshots is None
        assert result.admit_rounds == result.admit_tasks == 0

    def test_live_commit_never_dispatches(self):
        __, result = _run("thread:3", "parallel", 3, 3, seed=7, commit="live")
        assert result.admit_rounds == result.admit_tasks == 0

    @pytest.mark.slow
    def test_process_pool_admission_matches_serial(self):
        serial_engine, serial = _run(None, "serial", 4, 3, seed=11, commit="group")
        par_engine, par = _run(
            "process:2", "parallel", 4, 3, seed=11, commit="group"
        )
        assert _signature(par_engine) == _signature(serial_engine)
        assert _counters(par) == _counters(serial)
        assert par.admit_rounds > 0


# ---------------------------------------------------------------------------
# deterministic admit-dispatch fault paths (site "admit-dispatch")
# ---------------------------------------------------------------------------

class TestAdmitDispatchFaults:
    def _pair(self, faults, **kw):
        serial_engine, serial = _run(None, "serial", 4, 3, seed=5, commit="group")
        par_engine, par = _run(
            "thread:3", "parallel", 4, 3, seed=5, commit="group",
            faults=faults, **kw,
        )
        assert _signature(par_engine) == _signature(serial_engine)
        assert _counters(par) == _counters(serial)
        return par_engine, par

    def test_worker_crash_retries_clean_and_matches_serial(self):
        __, par = self._pair("seed=5; admit-dispatch:worker-crash:at=1")
        # The retry resubmits the clean evaluator, so the verdict still
        # arrives from a worker — a retry, not a fallback.
        assert par.worker_retries >= 1
        assert par.admit_rounds > 0

    def test_crash_storm_is_absorbed_by_retries(self):
        __, par = self._pair("seed=5; admit-dispatch:worker-crash:prob=1.0")
        assert par.worker_retries >= par.admit_tasks > 0

    def test_stale_snapshot_rejects_whole_task_to_serial(self):
        __, par = self._pair("seed=5; admit-dispatch:stale-snapshot:prob=1.0")
        # Version validation rejects every sabotaged task's candidates
        # before any RNG draw; they re-evaluate serially at their walk
        # position.
        assert par.admit_fallbacks > 0

    def test_garbage_footprint_rejects_per_row_to_serial(self):
        __, par = self._pair("seed=5; admit-dispatch:garbage-footprint:at=1")
        # Corrupted tuple serials fail per-candidate validation against
        # the live candidate list.
        assert par.admit_fallbacks > 0

    def test_fallbacks_are_counted_on_obs(self):
        engine, par = self._pair(
            "seed=5; admit-dispatch:stale-snapshot:prob=1.0", obs=True
        )
        data = par.metrics["sdl_parallel_admit_fallbacks_total"]["data"]
        assert sum(data.values()) == par.admit_fallbacks > 0

    def test_quarantined_pool_degrades_admission_to_serial(self):
        # An apply-phase garbage storm spends the shared quarantine
        # budget; once the pool disables itself, admission dispatch must
        # go fully serial — and still match the serial baseline.
        engine, par = self._pair(
            "seed=5; worker-exec:garbage-plan:prob=1.0"
        )
        assert engine.pool.disabled


# ---------------------------------------------------------------------------
# ship_shard regression: explicit __getstate__, never derived structure
# ---------------------------------------------------------------------------

def _fill(store_obj, rows, base=0):
    instances = [
        make_tuple(tuple(row), serial=base + i + 1, owner=0)
        for i, row in enumerate(rows)
    ]
    store_obj.admit_many(instances)
    return instances


class _ProbeStore(ColumnarStore):
    """Module-level (picklable) store whose ``__getstate__`` tags its state."""

    def __getstate__(self):
        return ("probed", super().__getstate__())

    def __setstate__(self, state):
        tag, inner = state
        assert tag == "probed"
        super().__setstate__(inner)


class TestShipShardExplicitState:
    def test_wire_shape_is_class_plus_getstate(self):
        store = ColumnarStore(2)
        _fill(store, [("k", i % 3, i) for i in range(12)])
        cls, state = pickle.loads(ship_shard(store))
        assert cls is ColumnarStore
        assert state == store.__getstate__()

    def test_getstate_override_is_honoured(self):
        # The regression: ship_shard must call __getstate__ explicitly,
        # not rely on pickle finding it — a subclass override must land
        # on the wire, and load_shard must route back through
        # __setstate__.
        store = _ProbeStore(1)
        _fill(store, [("k", 1)])
        cls, state = pickle.loads(ship_shard(store))
        assert cls is _ProbeStore
        assert state[0] == "probed"
        clone = load_shard(ship_shard(store))
        assert [i.tid for i in clone.iter_serial()] == [
            i.tid for i in store.iter_serial()
        ]

    def test_lazy_indexes_never_ship_and_rebuild_on_demand(self):
        plain = ColumnarStore(0)
        probed = ColumnarStore(0)
        rows = [("k", i % 4, i) for i in range(30)]
        _fill(plain, rows)
        _fill(probed, rows)
        # Build a lazy position-1 index on one store only.
        assert probed.candidates_probed(3, [(1, 2)])
        assert probed.groups[3].pos_index
        # Derived structure is invisible on the wire...
        assert ship_shard(plain) == ship_shard(probed)
        # ...and the receiving side rebuilds it lazily, with identical
        # contents.
        clone = load_shard(ship_shard(probed))
        assert not clone.groups[3].pos_index
        assert [i.tid for i in clone.candidates_probed(3, [(1, 2)])] == [
            i.tid for i in probed.candidates_probed(3, [(1, 2)])
        ]
        assert clone.groups[3].pos_index

    @pytest.mark.parametrize("cls", [TupleStore, ColumnarStore])
    def test_eviction_watermark_survives_the_wire(self, cls):
        store = cls(0)
        _fill(store, [("k", i) for i in range(5)])
        for v in range(1, storage.JOURNAL_DEPTH + 40):
            store.record(DataspaceChange("assert", (), (), v))
        assert store.evicted_version == 39
        clone = load_shard(ship_shard(store))
        assert clone.evicted_version == 39
        # The restored journal keeps refusing deltas past the watermark.
        assert clone.changes_since(10) is None
        assert clone.changes_since(39) is not None


# ---------------------------------------------------------------------------
# changes_since: the per-shard delta primitive
# ---------------------------------------------------------------------------

class TestChangesSince:
    def _store(self, versions):
        store = TupleStore(0)
        for v in versions:
            store.record(DataspaceChange("assert", (), (), v))
        return store

    def test_suffix_is_oldest_first(self):
        store = self._store([3, 5, 8, 13])
        assert [c.version for c in store.changes_since(4)] == [5, 8, 13]
        assert [c.version for c in store.changes_since(0)] == [3, 5, 8, 13]
        assert store.changes_since(13) == []

    def test_refuses_evicted_windows(self):
        store = self._store(range(1, storage.JOURNAL_DEPTH + 6))
        assert store.evicted_version == 5
        assert store.changes_since(4) is None
        assert store.changes_since(5) is not None
        assert store.changes_since(5)[0].version == 6


# ---------------------------------------------------------------------------
# SnapshotShipper: blob-once, deltas-after, full re-ship past eviction
# ---------------------------------------------------------------------------

class TestSnapshotShipper:
    def _dataspace(self):
        ds = Dataspace(shards=4)
        ds.insert_many([(f"c{i % 4}", i) for i in range(20)])
        return ds

    def test_first_bundle_carries_the_blob_then_deltas_only(self):
        ds = self._dataspace()
        shipper = SnapshotShipper(ds)
        first = shipper.bundle(1, ds.version, ds.version, ())
        assert first[6] is not None  # blob on first ship
        after_blob = shipper.ship_bytes
        assert after_blob > 0
        ds.insert(("c1", 99), owner=0)
        second = shipper.bundle(1, ds.version, ds.version, ())
        assert second[6] is None  # cached: deltas only
        assert second[2] == ds.version
        delta_bytes = shipper.ship_bytes - after_blob
        assert 0 < delta_bytes < after_blob
        deltas = pickle.loads(second[5])
        assert [c.version for c in deltas] == [ds.version]

    def test_with_blob_forces_the_blob_back_on(self):
        ds = self._dataspace()
        shipper = SnapshotShipper(ds)
        shipper.bundle(1, ds.version, ds.version, ())
        again = shipper.bundle(1, ds.version, ds.version, (), with_blob=True)
        assert again[6] is not None

    def test_eviction_past_floor_rebuilds_the_blob(self):
        ds = self._dataspace()
        shipper = SnapshotShipper(ds)
        shipper.bundle(1, ds.version, ds.version, ())
        # Overflow shard 1's journal far past the shipped floor.
        store = ds.stores[1]
        for v in range(ds.version + 1, ds.version + storage.JOURNAL_DEPTH + 10):
            store.record(DataspaceChange("assert", (), (), v))
        target = ds.version + storage.JOURNAL_DEPTH + 9
        rebuilt = shipper.bundle(1, target, target, ())
        assert rebuilt[6] is not None  # full re-ship
        assert rebuilt[3] == target    # fresh floor: no deltas needed
        assert pickle.loads(rebuilt[5]) == []

    def test_note_reply_counts_refreshes_and_versions(self):
        shipper = SnapshotShipper(self._dataspace())
        shipper.note_reply("full", "w1", 20)
        shipper.note_reply("delta", "w1", 21)
        shipper.note_reply("delta", "w2", 21)
        assert shipper.refreshes == {"delta": 2, "full": 1}
        assert shipper.worker_versions == {"w1": 21, "w2": 21}


# ---------------------------------------------------------------------------
# prepare_match: the dispatchable single-atom pure fragment
# ---------------------------------------------------------------------------

def _process(scope=None, unrestricted=True):
    return types.SimpleNamespace(
        view=types.SimpleNamespace(unrestricted=unrestricted),
        scope=lambda: dict(scope or {}),
    )


def _query(builder):
    return delayed(builder).then(assert_tuple("out")).build().query


class TestPrepareMatch:
    partitioner = resolve_shards(4)

    def test_single_atom_head_probe_is_eligible(self):
        query = _query(exists(a).match(P["c", a].retract()))
        meta = prepare_match(query, _process(), self.partitioner)
        assert meta is not None
        assert meta.arity == 2
        assert meta.shard == self.partitioner.shard_of(2, "c")
        assert (0, "c") in meta.probes

    def test_bound_var_head_routes_by_scope(self):
        query = _query(exists(a).match(P[Var("k"), a].retract()))
        meta = prepare_match(query, _process({"k": "c7"}), self.partitioner)
        assert meta is not None
        assert meta.shard == self.partitioner.shard_of(2, "c7")

    def test_multi_atom_is_serial(self):
        query = _query(
            exists(a, b).match(P["c", a].retract(), P["c", b].retract())
        )
        assert prepare_match(query, _process(), self.partitioner) is None

    def test_membership_test_is_serial(self):
        query = _query(
            exists(a).match(P["c", a].retract()).such_that(
                Membership(P["flag", b])
            )
        )
        assert prepare_match(query, _process(), self.partitioner) is None

    def test_restricted_view_is_serial(self):
        query = _query(exists(a).match(P["c", a].retract()))
        assert (
            prepare_match(query, _process(unrestricted=False), self.partitioner)
            is None
        )

    def test_unbound_head_is_serial(self):
        # No position-0 probe: candidates would merge across every shard.
        query = _query(exists(a, b).match(P[b, a].retract()))
        assert prepare_match(query, _process(), self.partitioner) is None
