"""Tests for trace/dataspace serialization (repro.viz.dump)."""

import io
import json

import pytest

from repro.core.dataspace import Dataspace
from repro.core.values import Atom
from repro.errors import SDLError
from repro.programs import run_sum3
from repro.viz.dump import (
    decode_value,
    dump_dataspace,
    dump_trace_jsonl,
    encode_value,
    load_dataspace,
    trace_records,
)
from repro.workloads import random_array


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [1, -3, 2.5, True, "text", Atom("year"), (1, 2), (Atom("a"), ("x", 3))],
    )
    def test_round_trip(self, value):
        assert decode_value(json.loads(json.dumps(encode_value(value)))) == value

    def test_atom_distinct_from_string(self):
        atom = decode_value(encode_value(Atom("x")))
        text = decode_value(encode_value("x"))
        assert isinstance(atom, Atom)
        assert not isinstance(text, Atom)

    def test_unencodable_rejected(self):
        with pytest.raises(SDLError):
            encode_value([1, 2])

    def test_undecodable_rejected(self):
        with pytest.raises(SDLError):
            decode_value({"mystery": 1})


class TestDataspaceRoundTrip:
    def test_snapshot_preserved(self):
        ds = Dataspace()
        ds.insert(("year", 87), owner=3)
        ds.insert((Atom("pos"), (1, 2)), owner=5)
        ds.insert(("year", 87), owner=3)  # duplicate instance
        blob = json.loads(json.dumps(dump_dataspace(ds)))
        clone = load_dataspace(blob)
        assert clone.multiset() == ds.multiset()
        owners = sorted(inst.owner for inst in clone.instances())
        assert owners == [3, 3, 5]

    def test_empty_dataspace(self):
        blob = dump_dataspace(Dataspace())
        assert load_dataspace(blob).snapshot() == []


class TestTraceDump:
    def test_jsonl_stream(self):
        out = run_sum3(random_array(8, seed=1), seed=2, detail=True)
        buffer = io.StringIO()
        count = dump_trace_jsonl(out.trace, buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(lines) == len(out.trace.events)
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "TxnCommitted" in kinds
        assert "ProcessCreated" in kinds

    def test_records_have_time_stamps(self):
        out = run_sum3(random_array(4, seed=1), seed=2, detail=True)
        for record in trace_records(out.trace):
            assert "step" in record and "round" in record

    def test_counters_only_trace_dumps_nothing(self):
        out = run_sum3(random_array(4, seed=1), seed=2, detail=False)
        buffer = io.StringIO()
        assert dump_trace_jsonl(out.trace, buffer) == 0
