"""DurableLog: segment round-trips, detect-and-truncate repair, engine wiring.

The contract under test (SEMANTICS §15): a durable load never silently
returns corrupt state — every outcome is either a verified prefix of the
persisted history or an explicit :class:`RecoveryError`, with every
truncation/fallback recorded as a :class:`RepairEvent`.
"""

import glob
import os

import pytest

from repro.core.dataspace import Dataspace
from repro.errors import RecoveryError
from repro.runtime import DurableLog, Engine, RecoveryLog
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.recovery import _MAGIC, _state_signature


def signature(space):
    return sorted((inst.values, inst.tid.owner) for inst in space.instances())


def seg_files(wal_dir, kind="*"):
    return sorted(glob.glob(os.path.join(wal_dir, f"{kind}-*.seg")))


def fill(space, n=40, retract_every=4):
    tids = [space.insert(("item", i, str(i))).tid for i in range(n)]
    for tid in tids[::retract_every]:
        space.retract(tid)


class TestRoundTrip:
    @pytest.mark.parametrize("shards", [None, 4])
    def test_load_rebuilds_live_state(self, tmp_path, shards):
        space = Dataspace(shards=shards)
        log = DurableLog(space, str(tmp_path), interval=8)
        fill(space)
        log.close()
        scratch, report = DurableLog.load(str(tmp_path))
        assert report.intact
        assert signature(scratch) == signature(space)
        assert report.frames_replayed >= 0
        assert report.checkpoint_version <= report.end_version

    def test_empty_dataspace_round_trips(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=8)
        log.close()
        scratch, report = DurableLog.load(str(tmp_path))
        assert report.intact
        assert signature(scratch) == []

    def test_preloaded_baseline_is_durable(self, tmp_path):
        space = Dataspace()
        space.insert(("pre", 1))
        space.insert(("pre", 2))
        log = DurableLog(space, str(tmp_path), interval=8)
        log.close()
        scratch, report = DurableLog.load(str(tmp_path))
        assert report.intact
        assert signature(scratch) == signature(space)
        assert report.frames_replayed == 0  # all state in the baseline

    def test_verify_durable_proves_disk_equals_live(self, tmp_path):
        space = Dataspace(shards=2)
        log = DurableLog(space, str(tmp_path), interval=16)
        fill(space, n=30)
        report = log.verify_durable()
        assert report.intact
        assert signature(log.recover()) == signature(space)  # inherited path
        log.close()

    def test_counters_track_frames_and_segments(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=8)
        for i in range(20):
            space.insert(("t", i))
        assert log.wal_frames == 20
        assert log.wal_bytes > 0
        assert log.segments_written == 1 + 20 // 8  # baseline + interval hits
        log.close()

    def test_sync_checkpoint_mode_defers_fsync(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=8, sync="checkpoint")
        fill(space, n=20)
        log.close()  # close fsyncs the tail
        scratch, report = DurableLog.load(str(tmp_path))
        assert report.intact
        assert signature(scratch) == signature(space)


class TestConstruction:
    def test_bad_sync_mode_rejected(self, tmp_path):
        with pytest.raises(RecoveryError):
            DurableLog(Dataspace(), str(tmp_path), sync="sometimes")

    def test_inherited_interval_bound_enforced(self, tmp_path):
        with pytest.raises(RecoveryError):
            DurableLog(Dataspace(), str(tmp_path), interval=0)

    def test_fresh_epoch_wipes_stale_segments(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=8)
        fill(space, n=20)
        log.close()
        assert len(seg_files(str(tmp_path))) > 2
        log2 = DurableLog(Dataspace(), str(tmp_path), interval=8)
        log2.close()
        # Only the new epoch's baseline pair survives the wipe.
        fresh = [os.path.basename(p) for p in seg_files(str(tmp_path))]
        assert fresh == [
            "ckpt-00000000000000000000.seg",
            "wal-00000000000000000000.seg",
        ]

    def test_retention_prunes_old_segment_pairs(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=4, keep=2)
        for i in range(40):
            space.insert(("t", i))
        log.close()
        assert len(seg_files(str(tmp_path), "ckpt")) == 2
        # WAL chain stays aligned with the kept checkpoints, so the oldest
        # kept checkpoint can still replay forward to the live state.
        scratch, report = DurableLog.load(str(tmp_path))
        assert report.intact
        assert signature(scratch) == signature(space)


class TestRepair:
    def corrupt(self, path, offset=None, flip=0x01):
        data = bytearray(open(path, "rb").read())
        index = len(data) // 2 if offset is None else offset
        data[index] ^= flip
        open(path, "wb").write(bytes(data))

    def test_bit_flip_in_newest_checkpoint_falls_back(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=8)
        fill(space, n=30)
        log.close()
        self.corrupt(seg_files(str(tmp_path), "ckpt")[-1])
        scratch, report = DurableLog.load(str(tmp_path))
        assert not report.intact
        assert report.checkpoints_skipped == 1
        # The older checkpoint + full WAL replay still reach the end state.
        assert signature(scratch) == signature(space)

    def test_torn_wal_tail_loads_verified_prefix(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=64)
        for i in range(10):
            space.insert(("t", i))
        log.close()
        wal = seg_files(str(tmp_path), "wal")[-1]
        data = open(wal, "rb").read()
        open(wal, "wb").write(data[: len(data) - 7])  # tear mid-frame
        scratch, report = DurableLog.load(str(tmp_path))
        assert any(r.kind == "torn" for r in report.repairs)
        assert report.frames_replayed == 9
        assert signature(scratch) == [
            (("t", i), 0) for i in range(9)
        ]  # the surviving prefix, exactly

    def test_flip_mid_wal_truncates_from_there(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=64)
        for i in range(10):
            space.insert(("t", i))
        log.close()
        wal = seg_files(str(tmp_path), "wal")[-1]
        self.corrupt(wal, offset=len(_MAGIC) + 20)
        scratch, report = DurableLog.load(str(tmp_path))
        assert any(r.kind == "corrupt" for r in report.repairs)
        assert report.frames_replayed < 10
        live = signature(space)
        assert signature(scratch) == live[: len(signature(scratch))]

    def test_missing_wal_segment_is_a_broken_chain(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=8, keep=16)
        for i in range(40):
            space.insert(("t", i))
        log.close()
        wals = seg_files(str(tmp_path), "wal")
        hole = wals[len(wals) // 2]
        hole_version = int(os.path.basename(hole)[4:-4])
        os.unlink(hole)
        for ckpt in seg_files(str(tmp_path), "ckpt"):
            if int(os.path.basename(ckpt)[5:-4]) > hole_version:
                os.unlink(ckpt)  # force the load to cross the hole
        scratch, report = DurableLog.load(str(tmp_path))
        assert any(r.kind == "broken-chain" for r in report.repairs)
        assert report.end_version <= hole_version

    def test_every_checkpoint_corrupt_raises(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=8)
        fill(space, n=20)
        log.close()
        for ckpt in seg_files(str(tmp_path), "ckpt"):
            open(ckpt, "wb").write(b"\x00" * 64)
        with pytest.raises(RecoveryError):
            DurableLog.load(str(tmp_path))

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            DurableLog.load(str(tmp_path))

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            DurableLog.load(str(tmp_path / "nope"))

    def test_truncated_checkpoint_is_invalid_as_a_whole(self, tmp_path):
        """A checkpoint missing its "end" frame must be skipped entirely,
        not half-loaded (atomic tmp+rename makes this unreachable in
        normal operation; a torn-write fault or crash-mid-rename isn't)."""
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=8)
        fill(space, n=20)
        log.close()
        newest = seg_files(str(tmp_path), "ckpt")[-1]
        data = open(newest, "rb").read()
        open(newest, "wb").write(data[: len(data) - 10])
        scratch, report = DurableLog.load(str(tmp_path))
        assert report.checkpoints_skipped == 1
        assert signature(scratch) == signature(space)

    def test_verify_durable_raises_on_disk_corruption(self, tmp_path):
        space = Dataspace()
        log = DurableLog(space, str(tmp_path), interval=64)
        for i in range(10):
            space.insert(("t", i))
        wal = log._wal_path
        log._wal_handle.flush()
        self.corrupt(wal, offset=len(_MAGIC) + 12)
        with pytest.raises(RecoveryError):
            log.verify_durable()
        log.close()


class TestInjectedStorageFaults:
    def run_with(self, tmp_path, plan, n=30, interval=8):
        space = Dataspace()
        injector = FaultInjector(FaultPlan.parse(plan))
        log = DurableLog(space, str(tmp_path), interval=interval, faults=injector)
        for i in range(n):
            space.insert(("t", i))
        log.close()
        return space, injector

    @pytest.mark.parametrize(
        "action", ["torn-write", "bit-flip", "lost-fsync"]
    )
    def test_wal_append_faults_load_a_prefix_or_repair(self, tmp_path, action):
        space, injector = self.run_with(
            tmp_path, f"seed=11; wal-append:{action}:at=5", interval=64
        )
        assert injector.total_fired == 1
        scratch, report = DurableLog.load(str(tmp_path))
        assert not report.intact  # the damage was found, never glossed over
        live = signature(space)
        got = signature(scratch)
        assert got == live[: len(got)]  # a verified prefix, nothing invented

    @pytest.mark.parametrize(
        "action", ["torn-write", "bit-flip", "lost-fsync"]
    )
    def test_checkpoint_faults_fall_back_without_data_loss(self, tmp_path, action):
        space, injector = self.run_with(
            tmp_path, f"seed=3; checkpoint-write:{action}:at=3"
        )
        assert injector.total_fired == 1
        scratch, report = DurableLog.load(str(tmp_path))
        # The WAL is intact, so an older checkpoint replays all the way.
        assert signature(scratch) == signature(space)

    @pytest.mark.parametrize("action", ["short-read", "bit-flip"])
    def test_segment_read_faults_never_load_garbage(self, tmp_path, action):
        space, __ = self.run_with(tmp_path, "seed=1")
        reader = FaultInjector(
            FaultPlan.parse(f"seed=9; segment-read:{action}:at=1")
        )
        scratch, report = DurableLog.load(str(tmp_path), faults=reader)
        live = signature(space)
        got = signature(scratch)
        assert got == live[: len(got)]
        assert report.repairs or got == live

    def test_storage_faults_never_touch_engine_rng(self, tmp_path):
        """An injected storage fault must not consume the injector's RNG
        when it does not fire, and never the engine's at all."""
        space, injector = self.run_with(
            tmp_path, "seed=7; wal-append:torn-write:at=1000"
        )
        assert injector.total_fired == 0
        scratch, report = DurableLog.load(str(tmp_path))
        assert report.intact
        assert signature(scratch) == signature(space)


class TestEngineIntegration:
    @staticmethod
    def _writer():
        from repro.core.actions import assert_tuple
        from repro.core.process import ProcessDefinition
        from repro.core.transactions import delayed

        return ProcessDefinition(
            "Writer",
            params=("i",),
            body=[delayed().then(assert_tuple("out", 1))],
        )

    def _noop_engine(self, tmp_path, **kw):
        engine = Engine(
            definitions=[self._writer()], wal_dir=str(tmp_path), **kw
        )
        for i in range(6):
            engine.start("Writer", (i,))
        return engine

    def test_wal_dir_selects_durable_log(self, tmp_path):
        engine = self._noop_engine(tmp_path, checkpoint_interval=4)
        assert isinstance(engine.recovery, DurableLog)
        result = engine.run()
        assert result.completed
        assert result.wal_frames > 0
        assert result.wal_bytes > 0
        assert result.wal_segments >= 1
        scratch, report = DurableLog.load(str(tmp_path))
        assert report.intact
        assert signature(scratch) == signature(engine.dataspace)

    def test_wal_dir_defaults_interval_without_checkpoint_arg(self, tmp_path):
        engine = self._noop_engine(tmp_path)
        assert isinstance(engine.recovery, DurableLog)
        assert engine.recovery.interval == 64

    def test_checkpoint_interval_alone_stays_in_memory(self):
        engine = Engine(definitions=[], checkpoint_interval=8)
        assert type(engine.recovery) is RecoveryLog

    def test_sdl_wal_dir_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SDL_WAL_DIR", str(tmp_path))
        engine = Engine(definitions=[])
        assert isinstance(engine.recovery, DurableLog)
        assert engine.wal_dir == str(tmp_path)
        engine.recovery.close()

    def test_durable_run_is_bit_identical_to_bare(self, tmp_path):
        bare = self._noop_engine(tmp_path / "w1", checkpoint_interval=4)
        r1 = bare.run()
        plain = Engine(definitions=[self._writer()], seed=0)
        # Same program without a WAL: durable logging must not perturb
        # scheduling, arbitration, or results.
        for i in range(6):
            plain.start("Writer", (i,))
        r2 = plain.run()
        assert _state_signature(bare.dataspace) == _state_signature(plain.dataspace)
        assert (r1.reason, r1.steps, r1.rounds, r1.commits) == (
            r2.reason, r2.steps, r2.rounds, r2.commits
        )

    def test_obs_metrics_expose_wal_sites(self, tmp_path):
        engine = self._noop_engine(tmp_path, checkpoint_interval=4, obs=True)
        result = engine.run()
        assert result.metrics["sdl_wal_frames_total"]["data"] > 0
        assert "sdl_wal_append_seconds" in result.metrics
        assert "sdl_checkpoint_write_seconds" in result.metrics
