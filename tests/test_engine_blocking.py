"""Engine tests: delayed transactions, blocking selections, deadlock, fairness."""

import pytest

from repro.core.actions import assert_tuple
from repro.core.constructs import guarded, repeat, select
from repro.core.expressions import Var
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists, no
from repro.core.transactions import delayed, immediate
from repro.core.views import import_rule
from repro.errors import DeadlockError
from repro.runtime.engine import Engine
from repro.runtime.events import TaskBlocked, TaskWoken, Trace


class TestDelayed:
    def test_delayed_waits_for_producer(self):
        a = Var("a")
        consumer = ProcessDefinition(
            "Consumer",
            body=[
                delayed(exists(a).match(P["item", a].retract())).then(
                    assert_tuple("got", a)
                )
            ],
        )
        producer = ProcessDefinition(
            "Producer", body=[immediate().then(assert_tuple("item", 42))]
        )
        engine = Engine(
            definitions=[consumer, producer], seed=1, trace=Trace(True), policy="fifo"
        )
        engine.start("Consumer")  # starts first, must block (fifo order)
        engine.start("Producer")
        result = engine.run()
        assert result.completed
        assert engine.dataspace.multiset() == {("got", 42): 1}
        assert any(isinstance(e, TaskBlocked) for e in engine.trace.events)
        assert any(isinstance(e, TaskWoken) for e in engine.trace.events)

    def test_delayed_succeeds_immediately_when_possible(self):
        a = Var("a")
        p = ProcessDefinition(
            "P", body=[delayed(exists(a).match(P["x", a])).then(assert_tuple("y", a))]
        )
        engine = Engine(definitions=[p], seed=1)
        engine.assert_tuples([("x", 5)])
        engine.start("P")
        assert engine.run().completed

    def test_delayed_negated_query_waits_for_retraction(self):
        # wait until no <busy> tuple remains — enabled by a RETRACTION
        waiter = ProcessDefinition(
            "Waiter", body=[delayed(no(P["busy", ANY])).then(assert_tuple("quiet", 1))]
        )
        a = Var("a")
        cleaner = ProcessDefinition(
            "Cleaner",
            body=[
                repeat(
                    guarded(immediate(exists(a).match(P["busy", a].retract())))
                )
            ],
        )
        engine = Engine(definitions=[waiter, cleaner], seed=2)
        engine.assert_tuples([("busy", i) for i in range(3)])
        engine.start("Waiter")
        engine.start("Cleaner")
        assert engine.run().completed
        assert ("quiet", 1) in engine.dataspace.multiset()

    def test_deadlock_detected(self):
        p = ProcessDefinition(
            "P", body=[delayed(exists().match(P["never", ANY]))]
        )
        engine = Engine(definitions=[p], seed=1)
        engine.start("P")
        with pytest.raises(DeadlockError):
            engine.run()

    def test_deadlock_returned_when_configured(self):
        p = ProcessDefinition("P", body=[delayed(exists().match(P["never", ANY]))])
        engine = Engine(definitions=[p], seed=1, on_deadlock="return")
        engine.start("P")
        result = engine.run()
        assert result.reason == "deadlock"
        assert result.deadlocked

    def test_mutual_delayed_deadlock(self):
        a = ProcessDefinition(
            "A",
            body=[
                delayed(exists().match(P["from_b"])).then(assert_tuple("from_a"))
            ],
        )
        b = ProcessDefinition(
            "B",
            body=[
                delayed(exists().match(P["from_a"])).then(assert_tuple("from_b"))
            ],
        )
        engine = Engine(definitions=[a, b], seed=1, on_deadlock="return")
        engine.start("A")
        engine.start("B")
        assert engine.run().reason == "deadlock"

    def test_weak_fairness_all_waiters_eventually_served(self):
        # many waiters on the same stream: every one must eventually commit
        a = Var("a")
        waiter = ProcessDefinition(
            "Waiter",
            params=("w",),
            body=[
                delayed(exists(a).match(P["item", a].retract())).then(
                    assert_tuple("served", Var("w"))
                )
            ],
        )
        feeder = ProcessDefinition(
            "Feeder",
            params=("n",),
            body=[
                repeat(
                    guarded(
                        immediate(
                            exists(a).match(P["fuel", a].retract())
                        ).then(assert_tuple("item", a))
                    )
                )
            ],
        )
        n = 12
        engine = Engine(definitions=[waiter, feeder], seed=7)
        engine.assert_tuples([("fuel", i) for i in range(n)])
        for w in range(n):
            engine.start("Waiter", (w,))
        engine.start("Feeder", (n,))
        assert engine.run().completed
        served = {
            inst.values[1] for inst in engine.dataspace.find_matching(P["served", ANY])
        }
        assert served == set(range(n))


class TestBlockingSelection:
    def test_selection_with_delayed_guard_blocks(self):
        a = Var("a")
        chooser = ProcessDefinition(
            "Chooser",
            body=[
                select(
                    guarded(
                        delayed(exists(a).match(P["left", a].retract())).then(
                            assert_tuple("chose", "left")
                        )
                    ),
                    guarded(
                        delayed(exists(a).match(P["right", a].retract())).then(
                            assert_tuple("chose", "right")
                        )
                    ),
                )
            ],
        )
        producer = ProcessDefinition(
            "Producer", body=[immediate().then(assert_tuple("right", 1))]
        )
        engine = Engine(definitions=[chooser, producer], seed=3)
        engine.start("Chooser")
        engine.start("Producer")
        assert engine.run().completed
        assert ("chose", "right") in engine.dataspace.multiset()

    def test_blocked_selection_retries_immediate_guards(self):
        # an immediate guard that becomes true later must still fire as long
        # as a delayed guard keeps the selection blocked
        a = Var("a")
        chooser = ProcessDefinition(
            "Chooser",
            body=[
                select(
                    guarded(
                        immediate(exists(a).match(P["now", a].retract())).then(
                            assert_tuple("chose", "immediate")
                        )
                    ),
                    guarded(
                        delayed(exists(a).match(P["never", a].retract())).then(
                            assert_tuple("chose", "delayed")
                        )
                    ),
                )
            ],
        )
        producer = ProcessDefinition(
            "Producer", body=[immediate().then(assert_tuple("now", 1))]
        )
        engine = Engine(definitions=[chooser, producer], seed=3)
        engine.start("Chooser")
        engine.start("Producer")
        assert engine.run().completed
        assert ("chose", "immediate") in engine.dataspace.multiset()


class TestWakeFilters:
    def test_unrelated_arity_does_not_wake(self):
        # waiter watches arity-2 <item, a>; producer spams arity-3 tuples
        a = Var("a")
        waiter = ProcessDefinition(
            "Waiter",
            body=[delayed(exists(a).match(P["item", a]))],
        )
        spammer = ProcessDefinition(
            "Spammer",
            body=[immediate().then(*(assert_tuple("noise", i, i) for i in range(5)))],
        )
        feeder = ProcessDefinition(
            "Feeder", body=[immediate().then(assert_tuple("item", 1))]
        )
        engine = Engine(
            definitions=[waiter, spammer, feeder], seed=1, trace=Trace(True),
            policy="fifo",
        )
        engine.start("Waiter")  # fifo: blocks before any producer runs
        engine.start("Spammer")
        engine.start("Feeder")
        assert engine.run().completed
        wakeups = [e for e in engine.trace.events if isinstance(e, TaskWoken)]
        # woken by the matching-arity change only (one wake, not six)
        assert len(wakeups) == 1

    def test_config_dependent_view_wakes_on_any_change(self):
        # the waiter's view depends on a context tuple of DIFFERENT arity;
        # the conservative filter must still wake it
        a = Var("a")
        pi = Var("pi")
        waiter = ProcessDefinition(
            "Waiter",
            imports=[
                import_rule("item", pi, where=[P["enable", pi, 1]]),
            ],
            body=[
                delayed(exists(a).match(P["item", a])).then(assert_tuple("woke", a))
            ],
        )
        enabler = ProcessDefinition(
            "Enabler", body=[immediate().then(assert_tuple("enable", 5, 1))]
        )
        engine = Engine(definitions=[waiter, enabler], seed=1)
        engine.assert_tuples([("item", 5)])
        engine.start("Waiter")
        engine.start("Enabler")
        assert engine.run().completed
        assert ("woke", 5) in engine.dataspace.multiset()
