"""Unit tests for process definitions, instances, and the society."""

import pytest

from repro.core.patterns import ANY, P
from repro.core.process import (
    ProcessDefinition,
    ProcessInstance,
    ProcessStatus,
    process,
)
from repro.core.society import ProcessSociety
from repro.core.transactions import immediate
from repro.core.views import View
from repro.errors import ProcessError, UnknownProcessError


class TestProcessDefinition:
    def test_basic_definition(self):
        d = ProcessDefinition("Sum", params=("k", "j"), body=[immediate()])
        assert d.name == "Sum"
        assert d.params == ("k", "j")
        assert d.view.unrestricted

    def test_imports_exports_build_view(self):
        d = ProcessDefinition(
            "P", body=[], imports=[P["a", ANY]], exports=[P["b", ANY]]
        )
        assert not d.view.unrestricted

    def test_view_and_rules_mutually_exclusive(self):
        with pytest.raises(ProcessError):
            ProcessDefinition("P", view=View(), imports=[P["a", ANY]])

    def test_bind_args(self):
        d = ProcessDefinition("P", params=("k", "j"))
        assert d.bind_args((1, 2)) == {"k": 1, "j": 2}

    def test_bind_args_arity_checked(self):
        d = ProcessDefinition("P", params=("k",))
        with pytest.raises(ProcessError):
            d.bind_args((1, 2))

    def test_decorator_passes_param_vars(self):
        @process("Echo", params="k j")
        def echo(k, j):
            from repro.core.actions import assert_tuple
            return [immediate().then(assert_tuple("echo", k + j))]

        assert isinstance(echo, ProcessDefinition)
        assert echo.params == ("k", "j")

    def test_repr(self):
        d = ProcessDefinition("P", params=("x",))
        assert repr(d) == "PROCESS P(x)"


class TestProcessInstance:
    def _definition(self):
        return ProcessDefinition("P", params=("k",), body=[immediate()])

    def test_scope_merges_params_and_lets(self):
        inst = ProcessInstance(1, self._definition(), (5,))
        assert inst.scope() == {"k": 5}
        inst.env["N"] = 9
        assert inst.scope() == {"k": 5, "N": 9}

    def test_liveness_transitions(self):
        inst = ProcessInstance(1, self._definition(), (5,))
        assert inst.is_live()
        inst.status = ProcessStatus.TERMINATED
        assert not inst.is_live()
        inst.status = ProcessStatus.CONSENSUS_WAIT
        assert inst.is_live()

    def test_repr_mentions_name_pid_status(self):
        inst = ProcessInstance(3, self._definition(), (7,))
        text = repr(inst)
        assert "P(" in text and "#3" in text and "running" in text


class TestSociety:
    def _society(self):
        return ProcessSociety([ProcessDefinition("P", params=("k",))])

    def test_define_and_lookup(self):
        soc = self._society()
        assert soc.definition("P").name == "P"
        with pytest.raises(UnknownProcessError):
            soc.definition("Q")

    def test_duplicate_definition_rejected(self):
        soc = self._society()
        with pytest.raises(ProcessError):
            soc.define(ProcessDefinition("P"))

    def test_spawn_assigns_increasing_pids(self):
        soc = self._society()
        a = soc.spawn("P", (1,))
        b = soc.spawn("P", (2,), spawner=a.pid)
        assert b.pid > a.pid
        assert b.spawner == a.pid
        assert soc.total_spawned == 2

    def test_live_tracking(self):
        soc = self._society()
        a = soc.spawn("P", (1,))
        b = soc.spawn("P", (2,))
        assert len(soc) == 2
        soc.mark_terminated(a.pid)
        assert len(soc) == 1
        assert soc.live_pids() == {b.pid}

    def test_aborted_status(self):
        soc = self._society()
        a = soc.spawn("P", (1,))
        soc.mark_terminated(a.pid, aborted=True)
        assert soc.get(a.pid).status is ProcessStatus.ABORTED

    def test_get_unknown_pid(self):
        with pytest.raises(ProcessError):
            self._society().get(404)
