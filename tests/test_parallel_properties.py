"""Property-based differential: ``workers=N`` ≡ ``workers=1``.

Random community programs under random seeds, run serial and then with a
worker pool, must agree on everything an SDL program can observe —
program state down to instance serials and owners, and every
shard-independent ``RunResult`` counter — under both commit disciplines
and with fault injection switched on.  Thread pools drive the hypothesis
loop (same dispatch/replay code as process pools, without per-example
fork cost); the process mode has its own deterministic differential in
``tests/test_parallel.py``.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.actions import assert_tuple, let
from repro.core.expressions import Var
from repro.core.patterns import P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed
from repro.runtime.engine import Engine

a = Var("a")
b = Var("b")
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def community_worker() -> ProcessDefinition:
    return ProcessDefinition(
        "Worker",
        params=("c",),
        body=[
            delayed(exists(a).match(P[Var("c"), a].retract())).then(
                let(Var("n"), a * 2 + 1),
                assert_tuple("done", Var("c"), Var("n")),
            )
        ],
    )


def pair_merger() -> ProcessDefinition:
    return ProcessDefinition(
        "Merger",
        params=("c",),
        body=[
            delayed(
                exists(a, b).match(
                    P[Var("c"), a].retract(), P[Var("c"), b].retract()
                )
            ).then(assert_tuple(Var("c"), a + b))
        ],
    )


def _counters(result):
    """Counters that must not depend on where apply evaluation ran."""
    return {
        "reason": result.reason,
        "steps": result.steps,
        "rounds": result.rounds,
        "commits": result.commits,
        "wakeups": result.wakeups,
        "precise": result.precise_wakeups,
        "spurious": result.spurious_wakeups,
        "wake_checks": result.wake_checks,
        "group_rounds": result.group_rounds,
        "batch_commits": result.batch_commits,
        "conflicts": result.conflicts,
        "max_batch": result.max_batch,
        "crashes": result.crashes,
        "plan_hits": result.plan_hits,
        "plan_misses": result.plan_misses,
        "dataspace_size": result.dataspace_size,
    }


def _signature(engine):
    return sorted(
        (inst.tid.serial, inst.tid.owner, inst.values)
        for inst in engine.dataspace.instances()
    )


def _run(workers, n_comm, n_work, seed, commit, faults=None, worker_timeout=None):
    engine = Engine(
        definitions=[community_worker(), pair_merger()],
        seed=seed,
        commit=commit,
        shards=4,
        workers=workers,
        faults=faults,
        worker_timeout=worker_timeout,
        on_deadlock="return",
    )
    engine.assert_tuples(
        [(f"c{c}", i) for c in range(n_comm) for i in range(n_work + 2)]
    )
    for c in range(n_comm):
        for __ in range(n_work):
            engine.start("Worker", (f"c{c}",))
        engine.start("Merger", (f"c{c}",))
    result = engine.run()
    return _signature(engine), _counters(result), result


class TestParallelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n_comm=st.integers(min_value=1, max_value=4),
        n_work=st.integers(min_value=1, max_value=4),
        seed=seeds,
        commit=st.sampled_from(["live", "group"]),
    )
    def test_worker_pool_is_bit_identical(self, n_comm, n_work, seed, commit):
        serial_sig, serial_counters, __ = _run(None, n_comm, n_work, seed, commit)
        par_sig, par_counters, __ = _run("thread:3", n_comm, n_work, seed, commit)
        assert par_sig == serial_sig
        assert par_counters == serial_counters

    @settings(max_examples=15, deadline=None)
    @given(
        n_comm=st.integers(min_value=1, max_value=3),
        seed=seeds,
        fault_seed=st.integers(min_value=0, max_value=99),
        site=st.sampled_from(
            ["pre-commit:crash:prob=0.2", "batch-admit:kill-round:prob=0.3",
             "post-match:abort:prob=0.2"]
        ),
    )
    def test_equivalence_holds_under_faults(self, n_comm, seed, fault_seed, site):
        plan = f"seed={fault_seed}; {site}"
        serial_sig, serial_counters, __ = _run(
            None, n_comm, 3, seed, "group", faults=plan
        )
        par_sig, par_counters, __ = _run(
            "thread:3", n_comm, 3, seed, "group", faults=plan
        )
        assert par_sig == serial_sig
        assert par_counters == serial_counters

    @settings(max_examples=12, deadline=None)
    @given(
        n_comm=st.integers(min_value=1, max_value=3),
        seed=seeds,
        fault_seed=st.integers(min_value=0, max_value=99),
        clause=st.sampled_from(
            [
                "worker-exec:worker-crash:at=1",
                "worker-exec:worker-crash:prob=0.3",
                "worker-exec:garbage-plan:prob=0.5",
                "worker-exec:worker-hang:at=1",
            ]
        ),
        commit=st.sampled_from(["live", "group"]),
    )
    def test_worker_faults_never_change_results(
        self, n_comm, seed, fault_seed, clause, commit
    ):
        """The supervision acceptance property: seeded worker crash/hang/
        garbage faults are absorbed by retry/quarantine/validation and the
        run ends bit-identical to serial apply — same state, same
        shard-independent counters, per seed, under live and group."""
        plan = f"seed={fault_seed}; {clause}"
        serial_sig, serial_counters, __ = _run(None, n_comm, 3, seed, commit)
        par_sig, par_counters, par = _run(
            "thread:3", n_comm, 3, seed, commit,
            faults=plan, worker_timeout=0.05,
        )
        assert par_sig == serial_sig
        assert par_counters == serial_counters
        if par.worker_plan_rejects or par.worker_quarantined:
            # Every absorbed fault shows up in the books: a rejected or
            # quarantined group is also a counted serial fallback.
            assert par.parallel_fallbacks + par.worker_plan_rejects > 0

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_parallel_run_is_deterministic_per_seed(self, seed):
        first = _run("thread:3", 3, 3, seed, "group")
        second = _run("thread:3", 3, 3, seed, "group")
        assert first[:2] == second[:2]
        # Dispatch bookkeeping is deterministic too, not just state.
        assert (
            first[2].parallel_rounds,
            first[2].parallel_groups,
            first[2].parallel_candidates,
            first[2].parallel_fallbacks,
        ) == (
            second[2].parallel_rounds,
            second[2].parallel_groups,
            second[2].parallel_candidates,
            second[2].parallel_fallbacks,
        )
