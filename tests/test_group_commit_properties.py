"""Hypothesis properties: group commit is serial-equivalent.

Two oracles, matching the two halves of the claim:

* **confluent programs** — disjoint-community workloads whose final
  dataspace is independent of serialization order.  For these the whole
  run is comparable: ``commit="group"`` must produce exactly the final
  multiset of ``commit="serial"`` (and ``"live"``), for random programs
  and seeds.
* **contended programs** — order-*dependent* workloads, where different
  serializations legitimately diverge.  Here the per-round serial-replay
  validator (``validate="serial"``) is the oracle: every admitted batch is
  re-run serially in arbitration order and must reproduce the batch state
  bit-for-bit; any admission bug raises ``EngineError``.  Conserved
  quantities (token count, total work) pin the end state.
"""

from hypothesis import given, settings, strategies as st

from repro.core.actions import assert_tuple
from repro.core.expressions import Var
from repro.core.patterns import P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed
from repro.runtime.engine import Engine


# ---------------------------------------------------------------------------
# program generators
# ---------------------------------------------------------------------------

a = Var("a")
b = Var("b")


def community_worker() -> ProcessDefinition:
    """Retract one item from the worker's own community, record it."""
    return ProcessDefinition(
        "Worker",
        params=("c",),
        body=[
            delayed(exists(a).match(P[Var("c"), a].retract())).then(
                assert_tuple("done", Var("c"), a)
            )
        ],
    )


def pair_merger() -> ProcessDefinition:
    """Merge two items of the worker's community into their sum."""
    return ProcessDefinition(
        "Merger",
        params=("c",),
        body=[
            delayed(
                exists(a, b).match(
                    P[Var("c"), a].retract(), P[Var("c"), b].retract()
                )
            ).then(assert_tuple(Var("c"), a + b))
        ],
    )


communities = st.integers(min_value=1, max_value=4)
workers_per = st.integers(min_value=1, max_value=4)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def run_confluent(n_comm, n_work, seed, commit):
    """Disjoint communities: n_work takers + enough items per community."""
    engine = Engine(
        definitions=[community_worker()],
        seed=seed,
        commit=commit,
        validate="serial" if commit == "group" else None,
    )
    rows = [(f"c{c}", i) for c in range(n_comm) for i in range(n_work)]
    engine.assert_tuples(rows)
    for c in range(n_comm):
        for __ in range(n_work):
            engine.start("Worker", (f"c{c}",))
    result = engine.run()
    assert result.completed
    return engine.dataspace.multiset(), result


class TestConfluentEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(n_comm=communities, n_work=workers_per, seed=seeds)
    def test_group_equals_serial_on_disjoint_communities(self, n_comm, n_work, seed):
        group_state, group_result = run_confluent(n_comm, n_work, seed, "group")
        serial_state, __ = run_confluent(n_comm, n_work, seed, "serial")
        assert group_state == serial_state
        # workers *within* a community may contend for the same item, but
        # confluence guarantees the outcome either way
        assert group_result.max_batch >= 1

    @settings(max_examples=20, deadline=None)
    @given(n_comm=communities, n_work=workers_per, seed=seeds)
    def test_group_equals_live_on_disjoint_communities(self, n_comm, n_work, seed):
        group_state, __ = run_confluent(n_comm, n_work, seed, "group")
        live_state, __ = run_confluent(n_comm, n_work, seed, "live")
        assert group_state == live_state

    @settings(max_examples=15, deadline=None)
    @given(n_comm=communities, seed=seeds)
    def test_merger_trees_sum_identically(self, n_comm, seed):
        # 4 items, 3 mergers per community: any merge order sums the items.
        def run(commit):
            engine = Engine(
                definitions=[pair_merger()],
                seed=seed,
                commit=commit,
                validate="serial" if commit == "group" else None,
            )
            engine.assert_tuples(
                [(f"c{c}", i + 1) for c in range(n_comm) for i in range(4)]
            )
            for c in range(n_comm):
                for __ in range(3):
                    engine.start("Merger", (f"c{c}",))
            assert engine.run().completed
            return engine.dataspace.multiset()

        assert run("group") == run("serial") == {
            (f"c{c}", 10): 1 for c in range(n_comm)
        }


class TestContendedValidation:
    @settings(max_examples=25, deadline=None)
    @given(
        workers=st.integers(min_value=2, max_value=8),
        tokens=st.integers(min_value=1, max_value=3),
        seed=seeds,
    )
    def test_token_passing_survives_serial_validation(self, workers, tokens, seed):
        # Heavily contended: `workers` takers over `tokens` shared counters.
        # validate="serial" re-runs every admitted batch; a bad admission
        # raises EngineError and fails the property.
        taker = ProcessDefinition(
            "Taker",
            body=[
                delayed(exists(a).match(P["tok", a].retract())).then(
                    assert_tuple("tok", a + 1)
                )
            ],
        )
        engine = Engine(
            definitions=[taker], seed=seed, commit="group", validate="serial"
        )
        engine.assert_tuples([("tok", 0)] * tokens)
        for __ in range(workers):
            engine.start("Taker")
        result = engine.run()
        assert result.completed
        state = engine.dataspace.multiset()
        # conservation: exactly `tokens` counters, increments sum to `workers`
        assert sum(state.values()) == tokens
        assert sum(value * count for (_, value), count in state.items()) == workers

    @settings(max_examples=20, deadline=None)
    @given(workers=st.integers(min_value=2, max_value=6), seed=seeds)
    def test_mixed_read_write_contention_validates(self, workers, seed):
        # Workers log the value they saw — order-dependent, so only the
        # validator (not cross-mode equality) is the oracle here.
        taker = ProcessDefinition(
            "Taker",
            params=("w",),
            body=[
                delayed(exists(a).match(P["tok", a].retract())).then(
                    assert_tuple("tok", a + 1), assert_tuple("saw", Var("w"), a)
                )
            ],
        )
        engine = Engine(
            definitions=[taker], seed=seed, commit="group", validate="serial"
        )
        engine.assert_tuples([("tok", 0)])
        for w in range(workers):
            engine.start("Taker", (w,))
        assert engine.run().completed
        state = engine.dataspace.multiset()
        assert state[("tok", workers)] == 1
        # each worker logged a distinct counter value
        seen = sorted(row[2] for row, __ in state.items() if row[0] == "saw")
        assert seen == list(range(workers))
