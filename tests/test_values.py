"""Unit tests for the SDL value domain (repro.core.values)."""

import pytest

from repro.core.values import NIL, Atom, check_value, is_value, value_repr
from repro.errors import ValueDomainError


class TestAtom:
    def test_atom_equals_plain_string(self):
        assert Atom("year") == "year"

    def test_atom_is_interned(self):
        assert Atom("year") is Atom("year")

    def test_atom_repr_has_no_quotes(self):
        assert repr(Atom("not_found")) == "not_found"

    def test_atom_usable_as_dict_key_with_string(self):
        d = {Atom("k"): 1}
        assert d["k"] == 1

    def test_empty_atom_rejected(self):
        with pytest.raises(ValueDomainError):
            Atom("")

    def test_non_string_atom_rejected(self):
        with pytest.raises(ValueDomainError):
            Atom(7)  # type: ignore[arg-type]

    def test_nil_is_the_nil_atom(self):
        assert NIL == "nil"
        assert isinstance(NIL, Atom)


class TestValueDomain:
    @pytest.mark.parametrize(
        "value",
        ["x", Atom("x"), 0, -3, 2.5, True, False, (1, 2), ("a", (1, 2.0))],
    )
    def test_members(self, value):
        assert is_value(value)
        assert check_value(value) == value

    @pytest.mark.parametrize("value", [None, [1], {"a": 1}, {1}, object(), (1, [2])])
    def test_non_members(self, value):
        assert not is_value(value)
        with pytest.raises(ValueDomainError):
            check_value(value)

    def test_nested_tuple_validation_is_deep(self):
        assert is_value((1, (2, (3, "x"))))
        assert not is_value((1, (2, (3, None))))


class TestValueRepr:
    def test_atom_rendered_bare(self):
        assert value_repr(Atom("year")) == "year"

    def test_string_rendered_quoted(self):
        assert value_repr("year") == "'year'"

    def test_tuple_rendered_in_parens(self):
        assert value_repr((1, 2)) == "(1,2)"

    def test_numbers(self):
        assert value_repr(87) == "87"
        assert value_repr(2.5) == "2.5"
