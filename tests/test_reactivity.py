"""Regression tests for the delta-driven reactivity pipeline.

Covers the three observable guarantees of the incremental engine:

* `insert_many` batches a bulk load into one change event;
* a window's memo and footprint survive out-of-footprint mutations
  (delta refresh, no full invalidation, no footprint recompute);
* the `"keys"` wake filter delivers no spurious wakes where the seed's
  `"arity"` filter did, and the counters proving it surface in RunResult.
"""

from repro.core.actions import assert_tuple
from repro.core.dataspace import JOURNAL_DEPTH, Dataspace, DataspaceChange
from repro.core.expressions import Var
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed, immediate
from repro.core.views import View, import_rule


class TestBatchedInsert:
    def test_insert_many_emits_single_change_event(self):
        ds = Dataspace()
        seen: list[DataspaceChange] = []
        ds.subscribe(seen.append)
        v0 = ds.version
        instances = ds.insert_many([("x", i) for i in range(5)])
        assert len(seen) == 1
        assert seen[0].kind == DataspaceChange.BATCH
        assert seen[0].asserted == tuple(instances)
        assert ds.version == v0 + 1  # one event, one version bump

    def test_insert_many_keeps_per_row_serials(self):
        ds = Dataspace()
        instances = ds.insert_many([("x", i) for i in range(4)])
        serials = [inst.tid.serial for inst in instances]
        assert serials == sorted(serials)
        assert len(set(serials)) == 4

    def test_insert_many_single_row_is_plain_assert(self):
        ds = Dataspace()
        seen: list[DataspaceChange] = []
        ds.subscribe(seen.append)
        ds.insert_many([("x", 1)])
        assert [c.kind for c in seen] == [DataspaceChange.ASSERT]

    def test_changes_since_replays_the_delta(self):
        ds = Dataspace()
        a = ds.insert(("a", 1))
        v = ds.version
        b = ds.insert(("b", 2))
        ds.retract(a.tid)
        changes = ds.changes_since(v)
        assert [c.kind for c in changes] == [
            DataspaceChange.ASSERT,
            DataspaceChange.RETRACT,
        ]
        assert changes[0].asserted == (b,)
        assert changes[1].retracted == (a,)
        assert ds.changes_since(ds.version) == []

    def test_changes_since_reports_journal_gap(self):
        ds = Dataspace()
        v = ds.version
        for i in range(JOURNAL_DEPTH + 10):
            ds.insert(("x", i))
        assert ds.changes_since(v) is None


class TestChangesSinceBoundaries:
    """`changes_since` offset arithmetic at the journal-depth boundary.

    The slice start is computed from ``version`` deltas on the assumption
    that the version advances exactly once per journal entry — these tests
    pin that invariant against batched inserts and the exact overflow edge.
    """

    def test_insert_many_batch_is_one_journal_entry(self):
        ds = Dataspace()
        v = ds.version
        batch = ds.insert_many([("x", i) for i in range(7)])
        ds.insert(("y",))
        changes = ds.changes_since(v)
        assert [c.kind for c in changes] == [
            DataspaceChange.BATCH,
            DataspaceChange.ASSERT,
        ]
        assert changes[0].asserted == tuple(batch)
        # version delta == journal entries, not rows
        assert ds.version == v + 2

    def test_exactly_journal_depth_behind_is_replayable(self):
        ds = Dataspace()
        ds.insert(("seed",))
        v = ds.version
        for i in range(JOURNAL_DEPTH):
            ds.insert(("x", i))
        changes = ds.changes_since(v)
        assert changes is not None
        assert len(changes) == JOURNAL_DEPTH
        assert changes[0].version == v + 1
        assert changes[-1].version == ds.version

    def test_one_past_journal_depth_forces_rebuild(self):
        ds = Dataspace()
        ds.insert(("seed",))
        v = ds.version
        for i in range(JOURNAL_DEPTH + 1):
            ds.insert(("x", i))
        assert ds.changes_since(v) is None

    def test_one_short_of_journal_depth_replays(self):
        ds = Dataspace()
        ds.insert(("seed",))
        v = ds.version
        for i in range(JOURNAL_DEPTH - 1):
            ds.insert(("x", i))
        changes = ds.changes_since(v)
        assert len(changes) == JOURNAL_DEPTH - 1
        assert [c.version for c in changes] == list(range(v + 1, ds.version + 1))

    def test_mixed_batches_at_depth_boundary(self):
        # Batches count as single entries, so JOURNAL_DEPTH batch events
        # stay replayable no matter how many rows they carried.
        ds = Dataspace()
        v = ds.version
        for i in range(JOURNAL_DEPTH):
            ds.insert_many([("x", i, j) for j in range(3)])
        changes = ds.changes_since(v)
        assert changes is not None
        assert len(changes) == JOURNAL_DEPTH
        assert all(c.kind == DataspaceChange.BATCH for c in changes)

    def test_none_fallback_triggers_full_window_rebuild(self):
        ds = Dataspace()
        view = View(imports=[import_rule("a", ANY)])
        window = view.window(ds)
        window.refresh()
        ds.insert(("a", 0))
        for i in range(JOURNAL_DEPTH + 5):
            ds.insert(("b", i))
        # The window fell past the journal horizon; refresh must still
        # converge on the true contents via the full-rebuild path.
        window.refresh()
        assert window.count_matching(P["a", ANY]) == 1
        assert window.count_matching(P["b", ANY]) == 0  # not imported


class TestWindowIncrementality:
    def test_out_of_footprint_mutation_keeps_memo_and_footprint(self):
        ds = Dataspace()
        view = View(imports=[import_rule("a", ANY)])
        window = view.window(ds)
        a1 = ds.insert(("a", 1))
        a2 = ds.insert(("a", 2))
        ds.insert(("b", 1))
        footprint = window.footprint()
        assert footprint == {a1.tid, a2.tid}
        assert window.stats.footprint_recomputes == 1
        window.imports_instance(a1)  # warm the memo

        # Same-arity but out-of-footprint mutation: classified via the
        # delta path, never a full invalidation or recompute.
        ds.insert(("b", 99))
        assert window.footprint() == footprint
        assert window.stats.footprint_recomputes == 1
        assert window.stats.full_invalidations == 0
        assert window.stats.delta_refreshes >= 1

        hits = window.stats.hits
        assert window.imports_instance(a1)  # memo survived: a hit, not a miss
        assert window.stats.hits == hits + 1

    def test_in_footprint_retraction_maintained_incrementally(self):
        ds = Dataspace()
        view = View(imports=[import_rule("a", ANY)])
        window = view.window(ds)
        a1 = ds.insert(("a", 1))
        a2 = ds.insert(("a", 2))
        assert window.footprint() == {a1.tid, a2.tid}
        ds.retract(a2.tid)
        a3 = ds.insert(("a", 3))
        assert window.footprint() == {a1.tid, a3.tid}
        assert window.stats.footprint_recomputes == 1
        assert window.stats.full_invalidations == 0

    def test_journal_gap_falls_back_to_full_recompute(self):
        ds = Dataspace()
        view = View(imports=[import_rule("a", ANY)])
        window = view.window(ds)
        a1 = ds.insert(("a", 1))
        assert window.footprint() == {a1.tid}
        for i in range(JOURNAL_DEPTH + 5):
            ds.insert(("b", i))
        a2 = ds.insert(("a", 2))
        assert window.footprint() == {a1.tid, a2.tid}
        assert window.stats.full_invalidations == 1
        assert window.stats.footprint_recomputes == 2

    def test_config_dependent_view_still_fully_invalidates(self):
        ds = Dataspace()
        pi = Var("pi")
        view = View(imports=[import_rule("item", pi, where=[P["enable", pi]])])
        window = view.window(ds)
        item = ds.insert(("item", 5))
        assert window.footprint() == set()
        ds.insert(("enable", 5))  # different arity, but changes coverage
        assert window.footprint() == {item.tid}
        assert window.stats.full_invalidations >= 1


def _noise_program(wake_filter: str):
    """A parked reader (arity-2 watch) plus a same-arity noise producer."""
    a = Var("a")
    waiter = ProcessDefinition(
        "Waiter",
        body=[
            delayed(exists(a).match(P["item", a].retract())).then(
                assert_tuple("got", a)
            )
        ],
    )
    spammer = ProcessDefinition(
        "Spammer",
        body=[immediate().then(*(assert_tuple("noise", i) for i in range(6)))],
    )
    # Two-phase feeder: the <item> arrives one round after the noise, so an
    # arity-woken waiter retries (and fails) before the item exists.
    feeder = ProcessDefinition(
        "Feeder",
        body=[
            immediate().then(assert_tuple("prep", 1, 1)),
            immediate(exists(a).match(P["prep", a, ANY].retract())).then(
                assert_tuple("item", a)
            ),
        ],
    )
    from repro.runtime.engine import Engine

    engine = Engine(
        definitions=[waiter, spammer, feeder],
        seed=1,
        policy="fifo",
        wake_filter=wake_filter,
    )
    engine.start("Waiter")  # fifo: parks before any producer runs
    engine.start("Spammer")
    engine.start("Feeder")
    return engine


class TestWakePrecision:
    def test_keys_filter_has_no_spurious_wakes(self):
        engine = _noise_program("keys")
        result = engine.run()
        assert result.completed
        assert ("got", 1) in engine.dataspace.multiset()
        assert result.spurious_wakeups == 0
        assert result.precise_wakeups >= 1
        assert result.wakeups == 1  # the matching <item, 1> change only

    def test_arity_filter_wakes_spuriously_on_same_arity_noise(self):
        engine = _noise_program("arity")
        result = engine.run()
        assert result.completed
        assert result.spurious_wakeups >= 1
        assert result.spurious_wake_rate > 0.0

    def test_runresult_exposes_window_counters(self):
        a = Var("a")
        reader = ProcessDefinition(
            "Reader",
            imports=[import_rule("item", ANY)],
            body=[
                delayed(exists(a).match(P["item", a].retract())).then(
                    assert_tuple("got", a)
                )
            ],
        )
        feeder = ProcessDefinition(
            "Feeder", body=[immediate().then(assert_tuple("item", 7))]
        )
        from repro.runtime.engine import Engine

        engine = Engine(definitions=[reader, feeder], seed=1, policy="fifo")
        engine.start("Reader")
        engine.start("Feeder")
        result = engine.run()
        assert result.completed
        # Ordinary (non-``where``) views never take the full-invalidation
        # path — the proof that unrelated mutations no longer reset memos.
        assert result.window_full_invalidations == 0
        assert result.window_delta_refreshes >= 1
        assert 0.0 <= result.window_hit_rate <= 1.0

    def test_seeded_runs_remain_deterministic(self):
        import dataclasses

        results = []
        for _ in range(2):
            engine = _noise_program("keys")
            results.append(dataclasses.asdict(engine.run()))
        assert results[0] == results[1]
