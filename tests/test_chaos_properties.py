"""Chaos properties: fault injection never breaks the runtime's invariants.

Three Hypothesis properties back the crash-stop failure model:

* **atomicity** — under *any* fault plan, a transaction is all-or-nothing:
  each item is either still in its community or recorded as done, never
  both and never neither.
* **determinism** — group and serial commit reach the same final state
  under the *same* crash plan (pid-targeted, so the same victim dies at
  the same commit index in both modes).
* **checkpoint fidelity** — checkpoint + journal replay reconstructs the
  live state exactly, for random workloads, intervals, and fault plans.

Unlike the rest of the property suite these tests do **not** pin
``max_examples``: CI scales them up with ``--hypothesis-profile=ci``.

The ``chaos_smoke`` tests read ``SDL_FAULTS`` / ``SDL_COMMIT`` from the
environment (the engine's documented defaults), so a CI matrix can sweep
fault seeds over them with ``pytest -k chaos_smoke``.
"""

from hypothesis import given, strategies as st

from repro.core.actions import assert_tuple
from repro.core.expressions import Var
from repro.core.patterns import P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed
from repro.runtime import Engine, RestartPolicy

a = Var("a")


def community_worker() -> ProcessDefinition:
    return ProcessDefinition(
        "Worker",
        params=("c",),
        body=[
            delayed(exists(a).match(P[Var("c"), a].retract())).then(
                assert_tuple("done", Var("c"), a)
            )
        ],
    )


seeds = st.integers(min_value=0, max_value=2**32 - 1)
small = st.integers(min_value=1, max_value=3)

_FAULT_POOL = [
    ("pre-commit", "crash"),
    ("pre-commit", "abort-txn"),
    ("post-match", "crash"),
    ("post-match", "abort-txn"),
    ("batch-admit", "kill-round"),
    ("wakeup-deliver", "drop-wake"),
    ("wakeup-deliver", "delay-wake"),
]


@st.composite
def fault_plans(draw):
    """A random plan of 1-3 clauses aimed at the Worker definition."""
    clauses = []
    for __ in range(draw(st.integers(min_value=1, max_value=3))):
        site, action = draw(st.sampled_from(_FAULT_POOL))
        if draw(st.booleans()):
            trigger = f"at={draw(st.integers(min_value=1, max_value=3))}"
        else:
            trigger = f"prob={draw(st.sampled_from(['0.25', '0.5']))}"
        cap = draw(st.integers(min_value=1, max_value=2))
        clauses.append(f"{site}:{action}:name=Worker:{trigger}:max={cap}")
    return f"seed={draw(st.integers(min_value=0, max_value=2**16))}; " + "; ".join(
        clauses
    )


def build_engine(n_comm, n_work, seed, commit, rows, **kw):
    engine = Engine(
        definitions=[community_worker()],
        seed=seed,
        commit=commit,
        on_deadlock="return",
        **kw,
    )
    engine.assert_tuples(rows)
    for c in range(n_comm):
        for __ in range(n_work):
            engine.start("Worker", (f"c{c}",))
    return engine


def assert_atomic(state, n_comm, n_work):
    """Each item either survives in place or became exactly one done record."""
    for c in range(n_comm):
        for i in range(n_work):
            live = state.get((f"c{c}", i), 0)
            done = state.get(("done", f"c{c}", i), 0)
            assert live + done == 1, (c, i, live, done)


class TestAtomicityUnderChaos:
    @given(
        n_comm=small,
        n_work=small,
        seed=seeds,
        commit=st.sampled_from(["live", "serial", "group"]),
        plan=fault_plans(),
    )
    def test_no_partial_transactions(self, n_comm, n_work, seed, commit, plan):
        rows = [(f"c{c}", i) for c in range(n_comm) for i in range(n_work)]
        engine = build_engine(n_comm, n_work, seed, commit, rows, faults=plan)
        result = engine.run()
        assert result.reason in ("completed", "crashed", "deadlock")
        assert_atomic(engine.dataspace.multiset(), n_comm, n_work)

    @given(n_comm=small, n_work=small, seed=seeds, plan=fault_plans())
    def test_atomic_with_supervised_restarts(self, n_comm, n_work, seed, plan):
        rows = [(f"c{c}", i) for c in range(n_comm) for i in range(n_work)]
        engine = build_engine(
            n_comm, n_work, seed, "live", rows,
            faults=plan,
            supervision=RestartPolicy(policy="restart", max_restarts=2),
        )
        result = engine.run()
        assert result.restarts <= result.crashes
        assert_atomic(engine.dataspace.multiset(), n_comm, n_work)


class TestGroupSerialDeterminismUnderChaos:
    @given(
        n_comm=small,
        n_work=small,
        seed=seeds,
        victim=st.integers(min_value=0, max_value=8),
        at=st.integers(min_value=1, max_value=2),
    )
    def test_group_equals_serial_under_identical_crash(
        self, n_comm, n_work, seed, victim, at
    ):
        # Items within a community are indistinguishable, so the final
        # multiset is independent of which worker took which item; a
        # pid-targeted crash kills the same victim at the same commit
        # index in both modes (pre-commit occurrences count per pid).
        pid = 1 + (victim % (n_comm * n_work))
        plan = f"pre-commit:crash:pid={pid}:at={at}:max=1"
        rows = [(f"c{c}", 0) for c in range(n_comm) for __ in range(n_work)]

        def run(commit):
            engine = build_engine(
                n_comm, n_work, seed, commit, rows,
                faults=plan,
                validate="serial" if commit == "group" else None,
            )
            result = engine.run()
            return engine.dataspace.multiset(), result.reason, result.crashes

        group_state, group_reason, group_crashes = run("group")
        serial_state, serial_reason, serial_crashes = run("serial")
        assert group_state == serial_state
        assert group_reason == serial_reason
        assert group_crashes == serial_crashes


class TestCheckpointFidelityUnderChaos:
    @given(
        n_comm=small,
        n_work=small,
        seed=seeds,
        interval=st.integers(min_value=1, max_value=8),
        plan=st.one_of(st.none(), fault_plans()),
    )
    def test_replay_reconstructs_live_state(self, n_comm, n_work, seed, interval, plan):
        rows = [(f"c{c}", i) for c in range(n_comm) for i in range(n_work)]
        engine = build_engine(
            n_comm, n_work, seed, "live", rows,
            faults=plan,
            checkpoint_interval=interval,
        )
        result = engine.run()
        assert result.checkpoints >= 1
        engine.recovery.verify()  # raises RecoveryError on divergence


class TestChaosSmoke:
    """Env-driven smoke tests for the CI fault matrix.

    With no ``SDL_FAULTS``/``SDL_COMMIT`` in the environment these run the
    workloads fault-free; the CI chaos job sweeps seeds and commit modes
    over them via those variables (``pytest -k chaos_smoke``).
    """

    def test_chaos_smoke_communities(self):
        rows = [(f"c{c}", i) for c in range(3) for i in range(3)]
        engine = build_engine(3, 3, seed=11, commit=None, rows=rows)
        result = engine.run()
        assert result.reason in ("completed", "crashed", "deadlock")
        assert_atomic(engine.dataspace.multiset(), 3, 3)

    def test_chaos_smoke_token_counters(self):
        taker = ProcessDefinition(
            "Worker",
            body=[
                delayed(exists(a).match(P["tok", a].retract())).then(
                    assert_tuple("tok", a + 1)
                )
            ],
        )
        engine = Engine(definitions=[taker], seed=13, on_deadlock="return")
        engine.assert_tuples([("tok", 0)] * 2)
        for __ in range(6):
            engine.start("Worker")
        result = engine.run()
        state = engine.dataspace.multiset()
        # conservation: crashes may lose increments, never counters
        assert sum(state.values()) == 2
        total = sum(value * count for (_, value), count in state.items())
        assert total == result.commits

    def test_chaos_smoke_checkpointed(self):
        rows = [(f"c{c}", i) for c in range(2) for i in range(3)]
        engine = build_engine(2, 3, seed=17, commit=None, rows=rows,
                              checkpoint_interval=4)
        engine.run()
        engine.recovery.verify()
