"""Worker-pool supervision: deadlines, retry, quarantine, validation.

Four claims under test.  (1) Every seeded worker fault — crash, hang,
garbage plan — is absorbed by the supervision policy and leaves the run
bit-identical to serial apply.  (2) Every absorption is counted: timeouts,
retries, respawns, quarantines, and plan rejects all surface on
``RunResult``.  (3) ``validate_plan`` rejects exactly the plans whose
replay could break the admission proof, with a stable reason string.
(4) A broken shared executor is evicted from the registry, so the next
run (or the retry) gets a live pool instead of a poisoned cached one.
"""

from __future__ import annotations

import types

import pytest

from repro.core.actions import assert_tuple, spawn
from repro.core.storage import resolve_shards
from repro.core.transactions import Control
from repro.errors import EngineError, FaultPlanError
from repro.runtime.engine import Engine
from repro.runtime.faults import FaultPlan
from repro.runtime.parallel import (
    _EXECUTORS,
    ActionPlan,
    WorkerSpec,
    _crash_worker,
    _executor_alive,
    _executor_for,
    resolve_workers,
    validate_plan,
)
from tests.test_parallel import _counters, _run, _signature, community_worker

NAME = community_worker().name


# ---------------------------------------------------------------------------
# validate_plan: one test per rejection reason
# ---------------------------------------------------------------------------

def _txn(n_emitting=1):
    actions = [assert_tuple("out", i) for i in range(n_emitting)]
    return types.SimpleNamespace(actions=actions)


def _result(n_matches=0):
    return types.SimpleNamespace(matches=[{}] * n_matches)


def _plan(ops):
    plan = ActionPlan()
    plan.ops = ops
    return plan


class TestValidatePlan:
    def test_valid_plan_passes(self):
        assert validate_plan(_plan([("assert", ("out", 0))]), _txn(), _result()) is None

    def test_valid_spawn_passes(self):
        txn = types.SimpleNamespace(actions=[spawn("W", 1)])
        assert validate_plan(_plan([("spawn", "W", (1,))]), txn, _result()) is None

    def test_error_plan_may_stop_short_never_run_long(self):
        plan = _plan([])
        plan.error = RuntimeError("worker-side failure")
        assert validate_plan(plan, _txn(2), _result()) is None
        plan.ops = [("assert", ("a",))] * 3
        assert validate_plan(plan, _txn(2), _result()) == "op-count"

    def test_not_a_plan(self):
        assert validate_plan("garbage", _txn(), _result()) == "not-a-plan"

    def test_subclass_is_not_a_plan(self):
        # type-exact on purpose: a worker returning a lookalike class is
        # exactly the forgery this check exists to stop.
        class Fake(ActionPlan):
            pass

        assert validate_plan(Fake(), _txn(0), _result()) == "not-a-plan"

    def test_malformed_ops(self):
        plan = _plan([])
        plan.ops = ("assert",)  # tuple, not list
        assert validate_plan(plan, _txn(), _result()) == "malformed-ops"

    def test_malformed_lets(self):
        plan = _plan([("assert", ("out", 0))])
        plan.lets = []
        assert validate_plan(plan, _txn(), _result()) == "malformed-lets"

    def test_malformed_control(self):
        plan = _plan([("assert", ("out", 0))])
        plan.control = "NONE"
        assert validate_plan(plan, _txn(), _result()) == "malformed-control"
        plan.control = Control.NONE
        assert validate_plan(plan, _txn(), _result()) is None

    def test_malformed_error(self):
        plan = _plan([("assert", ("out", 0))])
        plan.error = "boom"  # not an exception instance
        assert validate_plan(plan, _txn(), _result()) == "malformed-error"

    def test_op_count_per_match(self):
        plan = _plan([("assert", ("out", 0))])
        assert validate_plan(plan, _txn(1), _result(3)) == "op-count"
        plan.ops = [("assert", ("out", i)) for i in range(3)]
        assert validate_plan(plan, _txn(1), _result(3)) is None

    @pytest.mark.parametrize(
        "op",
        [
            ("assert", "__garbage__"),  # the _garbage_worker signature
            ("assert",),
            ("assert", ("x",), "extra"),
            (),
            "assert",
            ("spawn", 7, ()),
            ("spawn", "W", [1]),
            ("spawn", "W"),
        ],
    )
    def test_malformed_op(self, op):
        assert validate_plan(_plan([op]), _txn(), _result()) == "malformed-op"

    def test_unknown_op(self):
        assert validate_plan(_plan([("retract", 1)]), _txn(), _result()) == "unknown-op"

    def test_footprint_escape(self):
        partitioner = resolve_shards(4)
        values = ("out", 0)
        home = partitioner.shard_of_values(values)
        stranger = next(s for s in range(4) if s != home)
        ok = types.SimpleNamespace(write_shards=frozenset({home}))
        escape = types.SimpleNamespace(write_shards=frozenset({stranger}))
        plan = _plan([("assert", values)])
        assert validate_plan(plan, _txn(), _result(), ok, partitioner) is None
        assert (
            validate_plan(plan, _txn(), _result(), escape, partitioner)
            == "footprint-escape"
        )

    def test_no_partitioner_skips_containment(self):
        escape = types.SimpleNamespace(write_shards=frozenset())
        plan = _plan([("assert", ("out", 0))])
        assert validate_plan(plan, _txn(), _result(), escape, None) is None


# ---------------------------------------------------------------------------
# spec-parsing rejection paths (workers, shards, fault clauses)
# ---------------------------------------------------------------------------

class TestSpecRejections:
    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("fiber:4", "unknown worker mode 'fiber'"),
            ("thread:4:2", "too many ':'"),
            ("process:many", "bad worker count 'many'"),
            ("process:", "bad worker count ''"),
            (2.5, "unknown workers spec"),
            (True, "unknown workers spec"),
            (0, "must be >= 1"),
            ("-3", "must be >= 1"),
        ],
    )
    def test_resolve_workers_rejects(self, spec, fragment):
        with pytest.raises(ValueError, match="workers spec|must be >= 1"):
            resolve_workers(spec)
        try:
            resolve_workers(spec)
        except ValueError as err:
            assert fragment in str(err)

    def test_resolve_workers_accepts_canonical_forms(self):
        assert resolve_workers(" Thread:3 ") == WorkerSpec("thread", 3)
        assert resolve_workers("off") is None

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("hash:4", "unknown shard routing 'hash'"),
            ("head:4:2", "too many ':'"),
            ("head:lots", "bad shard count 'lots'"),
            ("head:", "bad shard count ''"),
            ("4.5", "bad shard count '4.5'"),
        ],
    )
    def test_resolve_shards_rejects(self, spec, fragment):
        try:
            resolve_shards(spec)
        except ValueError as err:
            assert fragment in str(err)
        else:
            pytest.fail(f"resolve_shards({spec!r}) did not raise")

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("head:1", "head routing needs >= 2 shards, got 1"),
            ("head:0", "head routing needs >= 2 shards, got 0"),
            ("head:-2", "head routing needs >= 2 shards, got -2"),
            (" HEAD:1 ", "head routing needs >= 2 shards, got 1"),
        ],
    )
    def test_resolve_shards_rejects_explicit_small_head(self, spec, fragment):
        # An explicit head:N below 2 used to fall through to the single
        # store silently; it is a spec error now, with a pointer at the fix.
        with pytest.raises(ValueError) as err:
            resolve_shards(spec)
        assert fragment in str(err.value)
        assert "use 'single'" in str(err.value)

    @pytest.mark.parametrize(
        "plan, fragment",
        [
            ("seed=x", "bad seed clause"),
            ("pre-commit", "needs at least site:action"),
            ("warp-core:crash", "unknown fault site"),
            ("pre-commit:melt", "unknown fault action"),
            ("wal-append:crash", "cannot fire at site"),
            ("worker-exec:torn-write", "cannot fire at site"),
            ("pre-commit:crash:when=3", "unknown option 'when'"),
            ("pre-commit:crash:at=1:at=2", "duplicate option at="),
            ("pre-commit:crash:prob=often", "bad value 'often'"),
            ("pre-commit:crash:at=0", "at= must be >= 1"),
            ("pre-commit:crash:prob=1.5", "prob= must be in [0, 1]"),
            ("pre-commit:crash:at=1:prob=0.5", "not both"),
            ("pre-commit:crash:badoption", "bad option 'badoption'"),
        ],
    )
    def test_fault_plan_rejects(self, plan, fragment):
        with pytest.raises(FaultPlanError) as err:
            FaultPlan.parse(plan)
        assert fragment in str(err.value)

    def test_engine_rejects_bad_worker_timeout(self):
        with pytest.raises(EngineError, match="worker_timeout must be > 0"):
            Engine(definitions=[], worker_timeout=0)

    def test_engine_rejects_bad_env_timeout(self, monkeypatch):
        monkeypatch.setenv("SDL_WORKER_TIMEOUT", "soon")
        with pytest.raises(EngineError, match="bad SDL_WORKER_TIMEOUT"):
            Engine(definitions=[])


# ---------------------------------------------------------------------------
# supervision paths through a real engine (thread pools: fast, same code)
# ---------------------------------------------------------------------------

class TestSupervisedDispatch:
    def test_hang_times_out_quarantines_and_matches_serial(self):
        serial_engine, serial = _run(None)
        engine, result = _run(
            "thread:3",
            faults="seed=5; worker-exec:worker-hang:at=1",
            worker_timeout=0.05,
        )
        assert _signature(engine) == _signature(serial_engine)
        assert _counters(result) == _counters(serial)
        assert result.worker_timeouts == 1
        assert result.worker_quarantined == 1
        assert result.parallel_fallbacks >= 1

    def test_thread_crash_retries_and_matches_serial(self):
        serial_engine, serial = _run(None)
        engine, result = _run(
            "thread:3", faults="seed=5; worker-exec:worker-crash:at=1"
        )
        assert _signature(engine) == _signature(serial_engine)
        assert _counters(result) == _counters(serial)
        assert result.worker_retries == 1
        assert result.worker_quarantined == 0

    def test_garbage_plan_is_rejected_and_matches_serial(self):
        serial_engine, serial = _run(None)
        engine, result = _run(
            "thread:3", faults="seed=5; worker-exec:garbage-plan:at=1"
        )
        assert _signature(engine) == _signature(serial_engine)
        assert _counters(result) == _counters(serial)
        assert result.worker_plan_rejects >= 1

    def test_garbage_storm_disables_pool_and_matches_serial(self):
        serial_engine, serial = _run(None)
        engine, result = _run(
            "thread:3", faults="seed=5; worker-exec:garbage-plan:prob=1.0"
        )
        assert _signature(engine) == _signature(serial_engine)
        assert _counters(result) == _counters(serial)
        assert engine.pool.disabled
        assert result.worker_plan_rejects + result.worker_quarantined >= 3

    def test_obs_counts_supervision_events(self):
        __, result = _run(
            "thread:3",
            faults="seed=5; worker-exec:garbage-plan:at=1",
            obs=True,
        )
        data = result.metrics["sdl_worker_plan_rejects_total"]["data"]
        # Labelled counter: one series per rejection reason.
        assert sum(data.values()) >= 1

    @pytest.mark.slow
    def test_process_crash_respawns_pool_once(self):
        serial_engine, serial = _run(None)
        engine, result = _run(
            "process:2", faults="seed=5; worker-exec:worker-crash:at=1"
        )
        assert _signature(engine) == _signature(serial_engine)
        assert _counters(result) == _counters(serial)
        assert result.worker_respawns == 1
        assert result.worker_retries >= 1


# ---------------------------------------------------------------------------
# executor registry hygiene (the eviction regression)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestExecutorEviction:
    def test_broken_executor_is_evicted_not_reused(self):
        first = _executor_for("process", 2)
        with pytest.raises(Exception):
            first.submit(_crash_worker, []).result(timeout=30)
        assert not _executor_alive(first)
        # The registry still holds the corpse until someone asks again —
        # _executor_for's health check must evict and replace it.
        second = _executor_for("process", 2)
        assert second is not first
        assert _executor_alive(second)
        assert _EXECUTORS[("process", 2)] is second
        assert second.submit(len, ()).result(timeout=30) == 0

    def test_back_to_back_runs_survive_a_pool_break(self):
        """A run that breaks the shared pool must not poison the next run."""
        _, broken = _run("process:2", faults="seed=5; worker-exec:worker-crash:prob=1.0")
        engine, clean = _run("process:2")
        serial_engine, serial = _run(None)
        assert _signature(engine) == _signature(serial_engine)
        assert _counters(clean) == _counters(serial)
        assert clean.worker_quarantined == 0


# ---------------------------------------------------------------------------
# restart-pressure accounting (per-definition counters + the storm gauge)
# ---------------------------------------------------------------------------

class TestRestartPressure:
    def _engine(self, faults, supervision, **kw):
        from repro.core.expressions import Var
        from repro.core.patterns import P
        from repro.core.process import ProcessDefinition
        from repro.core.query import exists
        from repro.core.transactions import delayed
        from repro.runtime import RestartPolicy

        a = Var("a")
        taker = ProcessDefinition(
            "Taker",
            body=[
                delayed(exists(a).match(P["src", a].retract())).then(
                    assert_tuple("dst", a)
                )
                for __ in range(2)
            ],
        )
        policy = RestartPolicy(**supervision) if supervision else None
        engine = Engine(
            definitions=[taker], seed=1, on_deadlock="return",
            faults=faults, supervision=policy, **kw,
        )
        engine.assert_tuples([("src", i) for i in range(4)])
        engine.start("Taker")
        return engine

    def test_restart_pressure_counts_per_definition(self):
        engine = self._engine(
            "pre-commit:crash:name=Taker:at=2:max=1", {"policy": "restart"}
        )
        result = engine.run()
        assert result.reason == "completed"
        pressure = result.restart_pressure["Taker"]
        assert pressure["crashes"] == 1
        assert pressure["restarts"] == 1
        assert pressure["backoff_rounds"] >= 1
        assert pressure["escalations"] == 0

    def test_escalation_is_counted(self):
        engine = self._engine(
            "pre-commit:crash:name=Taker:at=1",
            {"policy": "restart", "max_restarts": 1},
        )
        result = engine.run()
        assert result.reason == "escalated"
        pressure = result.restart_pressure["Taker"]
        assert pressure["crashes"] == 2
        assert pressure["restarts"] == 1
        assert pressure["escalations"] == 1

    def test_unsupervised_crash_still_counts_pressure(self):
        engine = self._engine("pre-commit:crash:name=Taker:at=2:max=1", None)
        result = engine.run()
        assert result.reason == "crashed"
        pressure = result.restart_pressure["Taker"]
        assert pressure["crashes"] == 1
        assert pressure["restarts"] == 0

    def test_storm_gauge_tracks_max_restarts(self):
        engine = self._engine(
            "pre-commit:crash:name=Taker:at=2:max=2", {"policy": "restart"},
            obs=True,
        )
        result = engine.run()
        storm = result.restart_pressure["Taker"]["restarts"]
        assert storm >= 1
        assert result.metrics["sdl_restart_storm"]["data"] == storm

    def test_clean_run_has_no_pressure(self):
        engine = self._engine(None, {"policy": "restart"})
        result = engine.run()
        assert result.reason == "completed"
        assert result.restart_pressure == {}
