"""Engine and dataspace configuration options (ablation switches included)."""

import pytest

from repro.core.actions import assert_tuple
from repro.core.dataspace import Dataspace
from repro.core.expressions import Var
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import consensus, delayed, immediate
from repro.errors import EngineError, ExportViolation
from repro.runtime.engine import Engine
from repro.runtime.events import Trace


class TestUnindexedDataspace:
    def test_same_results_without_index(self):
        a = Var("a")
        for indexed in (True, False):
            ds = Dataspace(indexed=indexed)
            ds.insert_many([("year", y) for y in (85, 88, 90)])
            found = sorted(i.values[1] for i in ds.find_matching(P["year", a]))
            assert found == [85, 88, 90]
            assert ds.candidates(P["nothing", ANY]) is not None

    def test_engine_runs_on_unindexed_space(self):
        a = Var("a")
        harvest = ProcessDefinition(
            "Harvest",
            body=[
                immediate(exists(a).match(P["year", a].retract())).then(
                    assert_tuple("found", a)
                )
            ],
        )
        ds = Dataspace(indexed=False)
        engine = Engine(dataspace=ds, definitions=[harvest], seed=1)
        engine.assert_tuples([("year", 90)])
        engine.start("Harvest")
        assert engine.run().completed
        assert ("found", 90) in ds.multiset()

    def test_retract_on_unindexed_space(self):
        ds = Dataspace(indexed=False)
        inst = ds.insert(("x", 1))
        ds.retract(inst.tid)
        assert len(ds) == 0


class TestWakeFilterModes:
    def _run(self, wake_filter):
        a = Var("a")
        waiter = ProcessDefinition(
            "Waiter",
            body=[delayed(exists(a).match(P["sig", a])).then(assert_tuple("woke", a))],
        )
        noise = ProcessDefinition(
            "Noise",
            body=[
                immediate().then(assert_tuple("n", 1, 2, 3)),
                immediate().then(assert_tuple("sig", 9)),
            ],
        )
        engine = Engine(
            definitions=[waiter, noise], seed=1, policy="fifo",
            wake_filter=wake_filter, trace=Trace(True),
        )
        engine.start("Waiter")
        engine.start("Noise")
        assert engine.run().completed
        return engine.trace.counters.wakeups

    def test_all_mode_wakes_more(self):
        assert self._run("all") > self._run("arity")

    def test_both_modes_complete(self):
        for mode in ("arity", "all"):
            assert self._run(mode) >= 1

    def test_bad_mode_rejected(self):
        with pytest.raises(EngineError):
            Engine(wake_filter="psychic")


class TestConsensusCheckModes:
    def _run(self, mode):
        member = ProcessDefinition(
            "Member", body=[consensus().then(assert_tuple("done", 1))]
        )
        engine = Engine(definitions=[member], seed=1, consensus_check=mode)
        engine.assert_tuples([("shared", 1)])
        for __ in range(4):
            engine.start("Member")
        result = engine.run()
        assert result.completed
        return result

    def test_idle_mode_still_fires(self):
        result = self._run("idle")
        assert result.consensus_rounds == 1

    def test_eager_mode_fires(self):
        result = self._run("eager")
        assert result.consensus_rounds == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(EngineError):
            Engine(consensus_check="eventually")


class TestExportPolicies:
    def _definitions(self):
        return [
            ProcessDefinition(
                "Leaky",
                exports=[P["allowed", ANY]],
                body=[
                    immediate().then(
                        assert_tuple("allowed", 1), assert_tuple("forbidden", 1)
                    )
                ],
            )
        ]

    def test_error_policy_raises(self):
        engine = Engine(definitions=self._definitions(), seed=1)
        engine.start("Leaky")
        with pytest.raises(ExportViolation):
            engine.run()

    def test_drop_policy_filters(self):
        engine = Engine(definitions=self._definitions(), seed=1, export_policy="drop")
        engine.start("Leaky")
        assert engine.run().completed
        assert engine.dataspace.multiset() == {("allowed", 1): 1}


class TestExternalDataspace:
    def test_engine_accepts_prebuilt_dataspace(self):
        ds = Dataspace()
        ds.insert(("pre", 1))
        engine = Engine(dataspace=ds, definitions=[ProcessDefinition("Nop", body=[immediate()])])
        engine.start("Nop")
        engine.run()
        assert ("pre", 1) in ds.multiset()

    def test_two_engines_can_share_definitions(self):
        nop = ProcessDefinition("Nop", body=[immediate().then(assert_tuple("ran", 1))])
        for seed in (1, 2):
            engine = Engine(definitions=[nop], seed=seed)
            engine.start("Nop")
            assert engine.run().completed
