"""Unit tests for the Linda baseline kernel (repro.linda)."""

import pytest

from repro.core.patterns import ANY
from repro.errors import DeadlockError, LindaError, StepLimitExceeded
from repro.linda import LindaKernel


class TestImmediatePrimitives:
    def test_out_now_and_rdp_now(self):
        k = LindaKernel()
        k.out_now("x", 1)
        assert k.rdp_now("x", ANY) == ("x", 1)
        assert len(k.space) == 1  # rdp does not remove

    def test_inp_now_removes(self):
        k = LindaKernel()
        k.out_now("x", 1)
        assert k.inp_now("x", ANY) == ("x", 1)
        assert len(k.space) == 0
        assert k.inp_now("x", ANY) is None

    def test_formal_matching_with_constants(self):
        k = LindaKernel()
        k.out_now("point", 3, 4)
        assert k.rdp_now("point", 3, ANY) == ("point", 3, 4)
        assert k.rdp_now("point", 9, ANY) is None


class TestProcesses:
    def test_out_then_in(self):
        k = LindaKernel(seed=1)

        def producer(kernel):
            yield kernel.out("msg", "hello")

        got = []

        def consumer(kernel):
            tup = yield kernel.in_("msg", ANY)
            got.append(tup)

        k.eval(consumer)
        k.eval(producer)
        k.run()
        assert got == [("msg", "hello")]
        assert len(k.space) == 0

    def test_rd_leaves_tuple(self):
        k = LindaKernel(seed=1)
        k.out_now("cfg", 42)
        seen = []

        def reader(kernel):
            tup = yield kernel.rd("cfg", ANY)
            seen.append(tup)

        k.eval(reader)
        k.eval(reader)
        k.run()
        assert seen == [("cfg", 42)] * 2
        assert len(k.space) == 1

    def test_inp_rdp_nonblocking_inside_process(self):
        k = LindaKernel(seed=1)
        results = []

        def prober(kernel):
            results.append((yield kernel.inp("nope", ANY)))
            results.append((yield kernel.rdp("nope", ANY)))

        k.eval(prober)
        k.run()
        assert results == [None, None]

    def test_eval_spawns_from_process(self):
        k = LindaKernel(seed=1)

        def child(kernel, n):
            yield kernel.out("child", n)

        def parent(kernel):
            yield kernel.eval(child, 7)

        k.eval(parent)
        k.run()
        assert k.rdp_now("child", 7) == ("child", 7)

    def test_non_generator_body_rejected(self):
        k = LindaKernel()
        with pytest.raises(LindaError):
            k.eval(lambda kernel: None)

    def test_yielding_garbage_rejected(self):
        k = LindaKernel()

        def bad(kernel):
            yield "not an op"

        k.eval(bad)
        with pytest.raises(LindaError):
            k.run()


class TestBlockingAndDeadlock:
    def test_in_blocks_until_out(self):
        k = LindaKernel(seed=2)
        order = []

        def consumer(kernel):
            tup = yield kernel.in_("n", ANY)
            order.append(("got", tup[1]))

        def producer(kernel):
            order.append(("put", 1))
            yield kernel.out("n", 1)

        k.eval(consumer)
        k.eval(producer)
        k.run()
        assert ("put", 1) in order and ("got", 1) in order

    def test_deadlock_raises(self):
        k = LindaKernel(seed=1)

        def stuck(kernel):
            yield kernel.in_("never", ANY)

        k.eval(stuck)
        with pytest.raises(DeadlockError):
            k.run()

    def test_step_limit(self):
        k = LindaKernel(seed=1)

        def ping(kernel):
            while True:
                yield kernel.out("t", 0)
                yield kernel.in_("t", ANY)

        k.eval(ping)
        with pytest.raises(StepLimitExceeded):
            k.run(max_steps=50)

    def test_many_producers_consumers_drain(self):
        k = LindaKernel(seed=5)
        served = []

        def producer(kernel, base):
            for i in range(5):
                yield kernel.out("job", base + i)

        def consumer(kernel):
            while True:
                tup = yield kernel.inp("job", ANY)
                if tup is None:
                    return
                served.append(tup[1])

        for b in (0, 100):
            k.eval(producer, b)
        k.run()  # producers fill the space first
        for __ in range(3):
            k.eval(consumer)
        k.run()
        assert sorted(served) == sorted(list(range(0, 5)) + list(range(100, 105)))

    def test_op_counts_accumulate(self):
        k = LindaKernel(seed=1)

        def p(kernel):
            yield kernel.out("a", 1)
            yield kernel.in_("a", ANY)

        k.eval(p)
        k.run()
        assert k.op_counts["out"] == 1
        assert k.op_counts["in"] == 1
        assert k.op_counts["eval"] == 1
