"""Fault injection: plan parsing, injector determinism, crash semantics.

The crash-stop contract under test: a process crashed mid-transaction
leaves the dataspace atomically untouched, its pumps detach, and its
blocked/consensus slots are released so peers observe ``deadlock``
rather than hanging forever.
"""

import pytest

from repro.core.actions import assert_tuple
from repro.core.expressions import Var
from repro.core.patterns import P
from repro.core.process import ProcessDefinition, ProcessStatus
from repro.core.query import exists
from repro.core.transactions import delayed, immediate
from repro.errors import FaultPlanError
from repro.runtime import Engine
from repro.runtime.events import ProcessCrashed, Trace
from repro.runtime.faults import FaultInjector, FaultPlan, FaultSpec

a = Var("a")
b = Var("b")


def mover(name="Mover", hops=2, src="src", dst="dst"):
    """Retract <src, a>, assert <dst, a>, `hops` times."""
    return ProcessDefinition(
        name,
        body=[
            delayed(exists(a).match(P[src, a].retract())).then(assert_tuple(dst, a))
            for __ in range(hops)
        ],
    )


# ---------------------------------------------------------------------------
# plan parsing and validation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_full_clause(self):
        plan = FaultPlan.parse("seed=7; pre-commit:crash:name=W:at=2; wakeup-deliver:drop:prob=0.1")
        assert plan.seed == 7
        assert plan.specs[0] == FaultSpec("pre-commit", "crash", name="W", at=2)
        assert plan.specs[1].action == "drop-wake"  # alias expanded
        assert plan.specs[1].prob == 0.1

    def test_default_trigger_is_at_1(self):
        (spec,) = FaultPlan.parse("pre-commit:crash").specs
        assert spec.at == 1 and spec.prob is None

    def test_roundtrips_through_str(self):
        text = "seed=3;pre-commit:crash:name=W:at=2;batch-admit:kill-round:prob=0.5"
        assert str(FaultPlan.parse(text)) == text

    @pytest.mark.parametrize(
        "bad",
        [
            "nope:crash",                      # unknown site
            "pre-commit:explode",              # unknown action
            "pre-commit:drop-wake",            # action/site mismatch
            "wakeup-deliver:crash",            # action/site mismatch
            "pre-commit:crash:at=0",           # at < 1
            "pre-commit:crash:prob=1.5",       # prob out of range
            "pre-commit:crash:at=1:prob=0.5",  # both triggers
            "pre-commit",                      # missing action
            "pre-commit:crash:bogus=1",        # unknown option
            "pre-commit:crash:at=x",           # bad int
            "seed=x",                          # bad seed
        ],
    )
    def test_malformed_plans_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(bad)

    def test_engine_rejects_bad_plan_eagerly(self):
        with pytest.raises(FaultPlanError):
            Engine(faults="pre-commit:explode")


class TestFaultInjector:
    def test_at_counts_occurrences_per_pid(self):
        inj = FaultInjector(FaultPlan.parse("pre-commit:crash:at=2"))
        assert inj.fire("pre-commit", pid=1) is None
        assert inj.fire("pre-commit", pid=2) is None   # separate counter
        assert inj.fire("pre-commit", pid=1) == "crash"
        assert inj.fire("pre-commit", pid=2) == "crash"

    def test_filters_do_not_consume_occurrences(self):
        inj = FaultInjector(FaultPlan.parse("pre-commit:crash:name=W:at=1"))
        assert inj.fire("pre-commit", pid=1, name="X") is None
        assert inj.fire("pre-commit", pid=1, name="W") == "crash"

    def test_max_caps_total_firings(self):
        inj = FaultInjector(FaultPlan.parse("pre-commit:crash:at=1:max=1"))
        assert inj.fire("pre-commit", pid=1) == "crash"
        assert inj.fire("pre-commit", pid=2) is None  # cap spent

    def test_probabilistic_firing_is_seed_deterministic(self):
        def pattern(seed):
            inj = FaultInjector(FaultPlan.parse(f"seed={seed}; post-match:abort:prob=0.5"))
            return [inj.fire("post-match", pid=1) for __ in range(32)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # astronomically unlikely to collide

    def test_fire_records_events(self):
        inj = FaultInjector(FaultPlan.parse("pre-commit:crash:at=2"))
        inj.fire("pre-commit", pid=5, name="W")
        inj.fire("pre-commit", pid=5, name="W")
        (event,) = inj.fired
        assert (event.site, event.action, event.pid, event.occurrence) == (
            "pre-commit", "crash", 5, 2
        )


# ---------------------------------------------------------------------------
# crash semantics in the engine
# ---------------------------------------------------------------------------


def build_mover_engine(n_items=4, **kw):
    engine = Engine(definitions=[mover()], seed=1, on_deadlock="return", **kw)
    engine.assert_tuples([("src", i) for i in range(n_items)])
    engine.start("Mover")
    return engine


class TestCrashAtomicity:
    @pytest.mark.parametrize("commit", ["live", "serial", "group"])
    def test_crash_leaves_dataspace_untouched(self, commit):
        """A pre-commit crash applies none of the transaction's effects."""
        engine = build_mover_engine(commit=commit, faults="pre-commit:crash:name=Mover:at=2")
        result = engine.run()
        state = engine.dataspace.multiset()
        # commit 1 landed whole, commit 2 not at all: 3 src + 1 dst, total 4
        assert result.commits == 1 and result.crashes == 1
        assert sum(state.values()) == 4
        assert sum(v for k, v in state.items() if k[0] == "dst") == 1
        assert sum(v for k, v in state.items() if k[0] == "src") == 3

    @pytest.mark.parametrize("commit", ["live", "serial", "group"])
    def test_crash_run_reports_crashed(self, commit):
        engine = build_mover_engine(commit=commit, faults="pre-commit:crash:name=Mover:at=1")
        result = engine.run()
        assert result.reason == "crashed"
        assert result.commits == 0
        assert engine.dataspace.multiset() == {("src", i): 1 for i in range(4)}

    def test_crashed_process_status_and_event(self):
        trace = Trace(detail=True)
        engine = build_mover_engine(trace=trace, faults="pre-commit:crash:name=Mover:at=1")
        engine.run()
        (instance,) = [p for p in engine.society.all_instances()]
        assert instance.status is ProcessStatus.CRASHED
        assert not instance.is_live()
        (event,) = list(trace.of_kind(ProcessCrashed))
        assert (event.name, event.site) == ("Mover", "pre-commit")

    def test_post_match_crash_fires_on_failed_verdicts_too(self):
        # No <src, _> at all: the query fails, post-match still fires.
        engine = Engine(
            definitions=[mover()], seed=0, on_deadlock="return",
            faults="post-match:crash:name=Mover:at=1",
        )
        engine.start("Mover")
        result = engine.run()
        assert result.reason == "crashed" and result.crashes == 1

    def test_abort_txn_turns_commit_into_failure(self):
        # IMMEDIATE mode: abort-txn surfaces as a plain failed transaction.
        prog = ProcessDefinition(
            "Tryer",
            body=[immediate(exists(a).match(P["src", a].retract())).then(
                assert_tuple("dst", a)
            )],
        )
        engine = Engine(
            definitions=[prog], seed=0, on_deadlock="return",
            faults="pre-commit:abort:name=Tryer:at=1",
        )
        engine.assert_tuples([("src", 1)])
        engine.start("Tryer")
        result = engine.run()
        assert result.completed and result.commits == 0 and result.crashes == 0
        assert engine.dataspace.multiset() == {("src", 1): 1}


class TestCrashReleasesPeers:
    def test_blocked_peer_sees_deadlock_not_hang(self):
        """The producer crashes before its commit; the consumer must be
        reported deadlocked instead of waiting forever."""
        producer = ProcessDefinition(
            "Prod", body=[delayed(exists()).then(assert_tuple("item", 1))]
        )
        consumer = ProcessDefinition(
            "Cons",
            body=[delayed(exists(a).match(P["item", a].retract())).then(
                assert_tuple("got", a)
            )],
        )
        engine = Engine(
            definitions=[producer, consumer], seed=0, on_deadlock="return",
            faults="pre-commit:crash:name=Prod:at=1",
        )
        engine.start("Cons")
        engine.start("Prod")
        result = engine.run(max_steps=10_000)
        assert result.reason == "deadlock"
        assert any("Cons" in line for line in result.deadlocked)

    def test_group_mode_crash_releasing_last_runnable_reports_deadlock(self):
        """Satellite: in ``commit="group"``, A crashing mid-round while B is
        blocked on A's future output must end the round sequence with a
        ``deadlock`` report naming B (not a hang, not "completed")."""
        producer = ProcessDefinition(
            "A", body=[delayed(exists()).then(assert_tuple("item", 1))]
        )
        waiter = ProcessDefinition(
            "B",
            body=[delayed(exists(a).match(P["item", a].retract())).then(
                assert_tuple("got", a)
            )],
        )
        engine = Engine(
            definitions=[producer, waiter], seed=3, on_deadlock="return",
            commit="group", faults="pre-commit:crash:name=A:at=1",
        )
        engine.start("A")
        engine.start("B")
        result = engine.run(max_steps=10_000)
        assert result.reason == "deadlock"
        assert any("B" in line for line in result.deadlocked)
        assert result.crashes == 1

    def test_consensus_peer_unblocks_when_waiter_crashes(self):
        """A crash releases consensus slots: the remaining singleton set can
        fire alone instead of waiting for the dead process forever."""
        from repro.core.transactions import consensus

        both = ProcessDefinition(
            "Cons",
            params=("k",),
            body=[
                delayed(exists(a).match(P["work", a].retract())).then(
                    assert_tuple("done", a)
                ),
                consensus(exists()).then(assert_tuple("phase", Var("k"))),
            ],
        )
        engine = Engine(
            definitions=[both], seed=0, on_deadlock="return",
            faults="pre-commit:crash:name=Cons:pid=1:at=1",
        )
        engine.assert_tuples([("work", 1), ("work", 2)])
        engine.start("Cons", (1,))
        engine.start("Cons", (2,))
        result = engine.run(max_steps=10_000)
        # pid 1 crashed before its first commit; pid 2 finishes its work and
        # its consensus fires as a singleton (pid 1 left the live set).
        assert result.consensus_rounds == 1
        state = engine.dataspace.multiset()
        assert state.get(("phase", 2)) == 1


class TestPumpFaults:
    def test_pump_spawn_crash(self):
        from repro.core.constructs import guarded, replicate

        prog = ProcessDefinition(
            "Repl",
            body=[
                # replication over a guard: the pump-spawn site fires when
                # the pump is created, before any guard can commit
                replicate(
                    guarded(
                        immediate(exists(a).match(P["w", a].retract())).then(
                            assert_tuple("d", a)
                        )
                    )
                )
            ],
        )
        engine = Engine(
            definitions=[prog], seed=0, on_deadlock="return",
            faults="pump-spawn:crash:name=Repl:at=1",
        )
        engine.assert_tuples([("w", 1), ("w", 2)])
        engine.start("Repl")
        result = engine.run()
        assert result.reason == "crashed" and result.commits == 0
        assert engine.dataspace.multiset() == {("w", 1): 1, ("w", 2): 1}

    def test_pump_pre_commit_crash_is_atomic(self):
        from repro.core.constructs import guarded, replicate

        prog = ProcessDefinition(
            "Repl",
            body=[
                replicate(
                    guarded(
                        immediate(exists(a).match(P["w", a].retract())).then(
                            assert_tuple("d", a)
                        )
                    )
                )
            ],
        )
        engine = Engine(
            definitions=[prog], seed=0, on_deadlock="return",
            faults="pre-commit:crash:name=Repl:at=2",
        )
        engine.assert_tuples([("w", 1), ("w", 2), ("w", 3)])
        engine.start("Repl")
        result = engine.run()
        state = engine.dataspace.multiset()
        assert result.reason == "crashed"
        # exactly one replica fired before the crash; the rest untouched
        assert sum(v for k, v in state.items() if k[0] == "d") == 1
        assert sum(v for k, v in state.items() if k[0] == "w") == 2


class TestWakeFaults:
    def _producer_consumer(self, faults):
        producer = ProcessDefinition(
            "Prod", body=[delayed(exists()).then(assert_tuple("item", 1))]
        )
        consumer = ProcessDefinition(
            "Cons",
            body=[delayed(exists(a).match(P["item", a].retract())).then(
                assert_tuple("got", a)
            )],
        )
        engine = Engine(
            definitions=[consumer, producer], seed=0, on_deadlock="return",
            faults=faults,
        )
        engine.start("Cons")
        engine.start("Prod")
        return engine

    def test_drop_wake_surfaces_as_deadlock(self):
        engine = self._producer_consumer("wakeup-deliver:drop-wake:name=Cons:at=1")
        result = engine.run(max_steps=10_000)
        assert result.reason == "deadlock"
        assert any("Cons" in line for line in result.deadlocked)

    def test_delayed_wake_delivers_at_round_boundary(self):
        engine = self._producer_consumer("wakeup-deliver:delay-wake:name=Cons:at=1")
        result = engine.run(max_steps=10_000)
        assert result.completed and result.commits == 2
        assert engine.dataspace.multiset() == {("got", 1): 1}

    def test_later_change_can_still_wake_after_drop(self):
        """At-least-once overall: a second assert re-triggers the dropped
        consumer."""
        producer = ProcessDefinition(
            "Prod2",
            body=[
                delayed(exists()).then(assert_tuple("item", 1)),
                delayed(exists()).then(assert_tuple("item", 2)),
            ],
        )
        consumer = ProcessDefinition(
            "Cons",
            body=[delayed(exists(a).match(P["item", a].retract())).then(
                assert_tuple("got", a)
            )],
        )
        engine = Engine(
            definitions=[consumer, producer], seed=0, on_deadlock="return",
            faults="wakeup-deliver:drop-wake:name=Cons:at=1",
        )
        engine.start("Cons")
        engine.start("Prod2")
        result = engine.run(max_steps=10_000)
        assert result.completed
        state = engine.dataspace.multiset()
        assert sum(v for k, v in state.items() if k[0] == "got") == 1


class TestDisabledInjectorIsInert:
    @pytest.mark.parametrize("commit", ["live", "group"])
    def test_never_firing_plan_is_bit_identical(self, commit):
        """A plan that cannot fire must not perturb arbitration or results."""
        def run(faults):
            engine = build_mover_engine(commit=commit, faults=faults)
            result = engine.run()
            return engine.dataspace.multiset(), result.steps, result.rounds, result.commits

        assert run(None) == run("pre-commit:crash:name=NoSuchProcess:at=1")

    def test_empty_plan_means_no_injector(self):
        assert Engine(faults="seed=5").faults is None
        assert Engine(faults="").faults is None
        assert Engine().faults is None
