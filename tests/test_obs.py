"""The runtime observability layer: metrics, spans, and engine wiring.

Covers the two zero-dependency primitives (``repro.obs.metrics``,
``repro.obs.spans``), the ``Observability`` facade and its resolution
rules (``SDL_OBS``), and the engine integration contract:

* disabled (the default) — no hook attached anywhere, ``RunResult.metrics``
  empty, and the run bit-identical to one with observability enabled
  (the layer never consumes the engine RNG);
* enabled — every exercised site shows up in the per-site latency
  histograms, the snapshot rides on ``RunResult.metrics``, and the CLI
  flags write the metrics/trace files.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    Observability,
    SITE_HISTOGRAMS,
    load_jsonl,
    resolve_obs,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.programs.summation import run_sum2, run_sum3


# ---------------------------------------------------------------------------
# metrics primitives
# ---------------------------------------------------------------------------


class TestCounter:
    def test_unlabelled_increments(self):
        c = Counter("hits")
        c.inc()
        c.inc(2)
        assert c.value == 3
        assert list(c.render()) == ["hits 3"]

    def test_labelled_children(self):
        c = Counter("fired")
        c.inc(site="a", action="x")
        c.inc(site="a", action="x")
        c.inc(action="y", site="b")  # kwarg order must not matter
        assert c.value == 3
        assert list(c.render()) == [
            'fired{action="x",site="a"} 2',
            'fired{action="y",site="b"} 1',
        ]

    def test_counter_is_monotone(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("size")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13


class TestHistogram:
    def test_bucketing_and_stats(self):
        h = Histogram("lat", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.005, 0.05, 5.0):
            h.observe(v)
        assert h.count == 5
        assert h.max == 5.0
        assert h.counts == [1, 2, 1, 1]  # last slot is the +Inf overflow
        assert h.quantile(0.5) == 0.01

    def test_boundary_value_falls_in_its_bucket(self):
        # Prometheus buckets are upper-inclusive: observe(le) counts in le.
        h = Histogram("lat", buckets=(0.001, 0.01))
        h.observe(0.001)
        assert h.counts == [1, 0, 0]

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(0.1, 0.01))

    def test_default_buckets_are_the_latency_ladder(self):
        assert Histogram("lat").bounds == LATENCY_BUCKETS

    def test_to_dict_shape(self):
        h = Histogram("lat", buckets=(0.001, 0.01))
        h.observe(0.005)
        data = h.to_dict()
        assert data["count"] == 1
        assert data["sum"] == 0.005
        assert data["buckets"] == [[0.01, 1]]
        assert data["overflow"] == 0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_prometheus_exposition_golden(self):
        reg = MetricsRegistry()
        reg.counter("sdl_total", help="things")
        reg.counter("sdl_total").inc(2)
        reg.gauge("sdl_size").set(7)
        h = reg.histogram("sdl_lat_seconds", buckets=(0.001, 0.01))
        h.observe(0.0005)
        h.observe(0.5)
        assert reg.render_prometheus() == (
            "# TYPE sdl_lat_seconds histogram\n"
            'sdl_lat_seconds_bucket{le="0.001"} 1\n'
            'sdl_lat_seconds_bucket{le="0.01"} 1\n'
            'sdl_lat_seconds_bucket{le="+Inf"} 2\n'
            "sdl_lat_seconds_sum 0.5005\n"
            "sdl_lat_seconds_count 2\n"
            "# TYPE sdl_size gauge\n"
            "sdl_size 7\n"
            "# HELP sdl_total things\n"
            "# TYPE sdl_total counter\n"
            "sdl_total 2\n"
        )

    def test_write_json_vs_text(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        json_path = tmp_path / "m.json"
        text_path = tmp_path / "m.prom"
        reg.write(str(json_path))
        reg.write(str(text_path))
        assert json.loads(json_path.read_text()) == {
            "a": {"kind": "counter", "data": 1}
        }
        assert text_path.read_text().startswith("# TYPE a counter")


# ---------------------------------------------------------------------------
# span recorder
# ---------------------------------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.t = 1000

    def __call__(self):
        self.t += 10
        return self.t


class TestSpanRecorder:
    def test_records_relative_timestamps(self):
        rec = SpanRecorder(clock=_FakeClock())
        start = rec.now()
        rec.record("match", start, 25, {"arity": 2})
        (event,) = rec.events()
        assert event == {"seq": 0, "name": "match", "t": 10, "dur": 25, "arity": 2}

    def test_ring_bounds_and_counts_drops(self):
        rec = SpanRecorder(capacity=3, clock=_FakeClock())
        for i in range(5):
            rec.point("p", i=i)
        assert len(rec) == 3
        assert rec.recorded == 5
        assert rec.dropped == 2
        assert [e["i"] for e in rec.events()] == [2, 3, 4]

    def test_jsonl_round_trip(self, tmp_path):
        rec = SpanRecorder(capacity=2, clock=_FakeClock())
        rec.point("a")
        rec.point("b", pid=7)
        rec.point("c")
        path = tmp_path / "trace.jsonl"
        assert rec.flush(str(path)) == 2
        meta, events = load_jsonl(str(path))
        assert meta == {
            "meta": "sdl-trace",
            "recorded": 3,
            "retained": 2,
            "dropped": 1,
            "capacity": 2,
        }
        assert [e["name"] for e in events] == ["b", "c"]
        assert events[0]["pid"] == 7

    def test_load_rejects_non_trace(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"name": "no-meta"}\n')
        with pytest.raises(ValueError):
            load_jsonl(str(path))


# ---------------------------------------------------------------------------
# the Observability facade and resolve_obs
# ---------------------------------------------------------------------------


class TestObservability:
    def test_sites_are_preregistered(self):
        obs = Observability()
        for name in SITE_HISTOGRAMS.values():
            assert name in obs.registry

    def test_span_context_manager(self):
        obs = Observability()
        with obs.span("match", arity=3):
            pass
        hist = obs.registry.get("sdl_match_seconds")
        assert hist.count == 1
        (event,) = obs.spans.events()
        assert event["name"] == "match"
        assert event["arity"] == 3

    def test_unknown_site_auto_registers(self):
        obs = Observability()
        obs.observe_ns("my-phase", 0, 1500)
        assert obs.registry.get("sdl_my_phase_seconds").count == 1

    def test_snapshot_carries_span_stats(self):
        obs = Observability()
        obs.point("fault", site="pre-commit")
        snap = obs.snapshot()
        assert snap["spans"]["data"]["recorded"] == 1
        assert snap["sdl_match_seconds"]["kind"] == "histogram"


class TestResolveObs:
    def test_passthrough_and_bools(self):
        obs = Observability()
        assert resolve_obs(obs) is obs
        assert isinstance(resolve_obs(True), Observability)
        assert resolve_obs(False) is None

    @pytest.mark.parametrize("value", ["", "0", "off", "false", "no", "none", " OFF "])
    def test_falsey_strings_disable(self, value):
        assert resolve_obs(value) is None

    @pytest.mark.parametrize("value", ["1", "on", "true", "yes"])
    def test_truthy_strings_enable(self, value):
        assert isinstance(resolve_obs(value), Observability)

    def test_none_consults_env(self, monkeypatch):
        monkeypatch.delenv("SDL_OBS", raising=False)
        assert resolve_obs(None) is None
        monkeypatch.setenv("SDL_OBS", "1")
        assert isinstance(resolve_obs(None), Observability)
        monkeypatch.setenv("SDL_OBS", "0")
        assert resolve_obs(None) is None

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_obs(3.14)


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("SDL_OBS", raising=False)
        run = run_sum3([1, 2, 3, 4], seed=1)
        assert run.engine.obs is None
        assert run.engine.dataspace._obs is None
        assert run.engine.wakeups.obs is None
        assert run.result.metrics == {}

    def test_enabled_run_is_bit_identical(self):
        # The layer must never consume the engine RNG: same seed, same
        # schedule, same counters, with or without instrumentation.
        off = run_sum2(list(range(32)), seed=11)
        on = run_sum2(list(range(32)), seed=11, obs=True)
        assert on.total == off.total
        assert (on.result.rounds, on.result.steps, on.result.commits) == (
            off.result.rounds,
            off.result.steps,
            off.result.commits,
        )

    def test_site_histograms_populated(self):
        run = run_sum2(list(range(16)), seed=3, obs=True)
        m = run.result.metrics
        assert m["sdl_match_seconds"]["data"]["count"] > 0
        assert m["sdl_wakeup_seconds"]["data"]["count"] > 0
        assert m["spans"]["data"]["recorded"] > 0

    def test_group_mode_sites(self):
        run = run_sum2(
            list(range(16)),
            seed=3,
            obs=True,
            commit="group",
            validate="serial",
            checkpoint_interval=4,
        )
        m = run.result.metrics
        for site in (
            "sdl_group_admit_seconds",
            "sdl_group_apply_seconds",
            "sdl_group_validate_seconds",
            "sdl_checkpoint_seconds",
        ):
            assert m[site]["data"]["count"] > 0, site

    def test_consensus_site(self):
        from repro.programs.summation import run_sum1

        run = run_sum1(list(range(8)), seed=0, obs=True)
        assert run.result.metrics["sdl_consensus_seconds"]["data"]["count"] > 0

    def test_env_sweep_enables(self, monkeypatch):
        monkeypatch.setenv("SDL_OBS", "on")
        run = run_sum3([1, 2, 3, 4], seed=1)
        assert run.engine.obs is not None
        assert run.result.metrics

    def test_summary_gauges(self):
        run = run_sum3([1, 2, 3, 4], seed=1, obs=True)
        m = run.result.metrics
        assert m["sdl_dataspace_size"]["data"] == 1
        assert m["sdl_rounds_total"]["data"] == run.result.rounds
        assert m["sdl_commits_total"]["data"] == run.result.commits

    def test_shard_occupancy_gauges_reconcile_after_retracts(self):
        # Retract-heavy sharded run: every retract must pull its home
        # shard's gauge down with it, so at teardown each gauge equals
        # the shard's live instance count exactly (not just in total).
        from repro.core.expressions import Var
        from repro.core.patterns import P
        from repro.core.process import ProcessDefinition
        from repro.core.query import exists
        from repro.core.transactions import delayed
        from repro.runtime.engine import Engine

        a = Var("a")
        eater = ProcessDefinition(
            "Eater",
            params=("c",),
            body=[delayed(exists(a).match(P[Var("c"), a].retract())).then()],
        )
        engine = Engine(definitions=[eater], seed=3, shards=4, obs=True)
        engine.assert_tuples(
            [(f"c{c}", i) for c in range(6) for i in range(4)]
        )
        for c in range(6):
            for __ in range(3):
                engine.start("Eater", (f"c{c}",))
        result = engine.run()
        assert result.completed
        for shard, store in enumerate(engine.dataspace.stores):
            gauge = result.metrics[f"sdl_shard_occupancy_{shard}"]["data"]
            assert gauge == len(store), f"gauge drifted on shard {shard}"
        assert result.dataspace_size == sum(
            len(store) for store in engine.dataspace.stores
        )

    def test_run_metrics_surfaces_obs(self):
        from repro.viz.stats import run_metrics

        run = run_sum2(list(range(16)), seed=3, obs=True)
        metrics = run_metrics(run.result, run.trace)
        sites = metrics.obs_sites()
        assert sites["match"] > 0
        assert metrics.as_row()["obs_sites"] >= 2

        bare = run_sum2(list(range(16)), seed=3)
        assert run_metrics(bare.result, bare.trace).as_row()["obs_sites"] == 0


# ---------------------------------------------------------------------------
# CLI flags
# ---------------------------------------------------------------------------


PROGRAM = """
process Harvest()
behavior
  *[ exists a : <year, a>^ : a > 87 -> (found, a) ]
end
"""


class TestCli:
    def test_metrics_and_trace_out(self, tmp_path, monkeypatch):
        monkeypatch.delenv("SDL_OBS", raising=False)
        from repro.__main__ import main

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.jsonl"
        data = tmp_path / "data.txt"
        data.write_text("year, 85\nyear, 88\nyear, 90\n")
        program = str(tmp_path / "prog.sdl")
        with open(program, "w") as handle:
            handle.write(PROGRAM)
        code = main(
            [
                "run",
                program,
                "--start",
                "Harvest",
                "--data",
                str(data),
                "--metrics-out",
                str(metrics_path),
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        snap = json.loads(metrics_path.read_text())
        assert snap["sdl_match_seconds"]["data"]["count"] > 0
        meta, events = load_jsonl(str(trace_path))
        assert meta["recorded"] == len(events) + meta["dropped"]
        assert any(e["name"] == "match" for e in events)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
