"""Unit tests for the pattern language (repro.core.patterns)."""

import pytest

from repro.core.expressions import Bindings, EvalContext, Var, variables
from repro.core.patterns import (
    ANY,
    LitElement,
    Pattern,
    VarElement,
    WildElement,
    Wildcard,
    P,
    pattern,
)
from repro.errors import ArityError, PatternError, UnboundVariableError


class TestConstruction:
    def test_p_indexer_equals_pattern_call(self):
        a = Var("a")
        assert repr(P["year", a]) == repr(pattern("year", a))

    def test_single_field_indexer(self):
        assert P["x"].arity == 1

    def test_wildcard_singleton(self):
        assert Wildcard() is ANY

    def test_field_kinds(self):
        a = Var("a")
        pat = P[87, a, ANY, a + 1]
        kinds = [type(el) for el in pat.elements]
        assert kinds == [LitElement, VarElement, WildElement, LitElement]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ArityError):
            Pattern(())

    def test_invalid_field_rejected(self):
        with pytest.raises(PatternError):
            pattern(object())

    def test_free_and_binding_variables(self):
        a, b = variables("a b")
        pat = P[a, b + 1, ANY]
        assert pat.free_variables() == {"a", "b"}
        assert pat.binding_variables() == {"a"}


class TestMatching:
    def test_constant_match(self):
        assert P["year", 87].match(("year", 87), {}) == {}
        assert P["year", 87].match(("year", 88), {}) is None

    def test_arity_mismatch(self):
        assert P["x", ANY].match(("x",), {}) is None
        assert P["x"].match(("x", 1), {}) is None

    def test_wildcard_matches_anything(self):
        assert P[ANY, ANY].match(("a", (1, 2)), {}) == {}

    def test_variable_binds(self):
        a = Var("a")
        assert P["year", a].match(("year", 90), {}) == {"a": 90}

    def test_bound_variable_tests_equality(self):
        a = Var("a")
        assert P["year", a].match(("year", 90), {"a": 90}) == {}
        assert P["year", a].match(("year", 90), {"a": 91}) is None

    def test_repeated_variable_must_agree(self):
        a = Var("a")
        pat = P[a, a]
        assert pat.match((5, 5), {}) == {"a": 5}
        assert pat.match((5, 6), {}) is None

    def test_expression_field_uses_bindings(self):
        k, j, a = variables("k j a")
        pat = P[k - 2 ** (j - 1), a]
        assert pat.match((4, 99), {"k": 8, "j": 3}) == {"a": 99}
        assert pat.match((5, 99), {"k": 8, "j": 3}) is None

    def test_expression_field_unbound_raises(self):
        k = Var("k")
        with pytest.raises(UnboundVariableError):
            P[k + 1].match((5,), {})

    def test_matches_boolean_helper(self):
        assert P["x", ANY].matches(("x", 3))
        assert not P["x", ANY].matches(("y", 3))


class TestInstantiate:
    def _ctx(self, **bound):
        return EvalContext(Bindings(bound))

    def test_instantiate_evaluates_fields(self):
        a, b = variables("a b")
        pat = P["sum", a + b]
        assert pat.instantiate(self._ctx(a=1, b=2)) == ("sum", 3)

    def test_instantiate_variable(self):
        a = Var("a")
        assert P[a].instantiate(self._ctx(a="x")) == ("x",)

    def test_wildcard_cannot_be_asserted(self):
        with pytest.raises(PatternError):
            P["x", ANY].instantiate(self._ctx())

    def test_unbound_variable_fails(self):
        with pytest.raises(UnboundVariableError):
            P[Var("nope")].instantiate(self._ctx())


class TestIndexConstants:
    def test_pure_constants(self):
        probes = P["year", 87].index_constants({})
        assert probes == [(0, "year"), (1, 87)]

    def test_bound_variable_contributes(self):
        a = Var("a")
        assert P["x", a].index_constants({"a": 3}) == [(0, "x"), (1, 3)]

    def test_unbound_variable_and_wildcard_skip(self):
        a = Var("a")
        assert P[ANY, a].index_constants({}) == []

    def test_evaluable_expression_contributes(self):
        k = Var("k")
        assert P[k * 2, ANY].index_constants({"k": 4}) == [(0, 8)]

    def test_unevaluable_expression_skipped(self):
        k = Var("k")
        assert P[k * 2, "tag"].index_constants({}) == [(1, "tag")]


class TestRetractTag:
    def test_retract_builds_query_atom(self):
        from repro.core.query import QueryAtom

        atom = P["x", ANY].retract()
        assert isinstance(atom, QueryAtom)
        assert atom.retract is True

    def test_repr(self):
        from repro.core.values import Atom

        a = Var("a")
        assert repr(P[Atom("year"), a]) == "<year,a>"
        assert "^" in repr(P["year", a].retract())
