"""Scale tests — the paper's "many thousands of concurrent processes".

These are correctness tests at large society sizes with wall-clock
guardrails, not micro-benchmarks; they ensure the engine's data structures
(wake filters, consensus memoisation, index-probed footprints) hold up.
"""

import time


from repro.core.actions import assert_tuple
from repro.core.expressions import Var
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import consensus, delayed, immediate
from repro.programs import run_sum2, run_sum3
from repro.runtime.engine import Engine
from repro.workloads import random_array


class TestThousandsOfProcesses:
    def test_sum2_with_two_thousand_processes(self):
        n = 2048
        values = random_array(n, seed=5)
        start = time.perf_counter()
        out = run_sum2(values, seed=3)
        elapsed = time.perf_counter() - start
        assert out.total == sum(values)
        assert out.trace.counters.processes_created == n - 1
        assert out.result.rounds <= 16  # logarithmic makespan survives scale
        assert elapsed < 30

    def test_sum3_with_four_thousand_tuples(self):
        n = 4096
        values = random_array(n, seed=5)
        out = run_sum3(values, seed=3)
        assert out.total == sum(values)
        assert out.result.parallelism > 50

    def test_hundreds_of_consensus_communities(self):
        g = Var("g")
        member = ProcessDefinition(
            "Member",
            params=("g",),
            imports=[P[g, ANY]],
            exports=[P[g, ANY], P["done", ANY]],
            body=[
                immediate().then(assert_tuple(g, "arrived")),
                consensus(exists().match(P[g, ANY])).then(assert_tuple("done", g)),
            ],
        )
        processes, communities = 400, 40
        engine = Engine(definitions=[member], seed=2)
        for c in range(communities):
            engine.assert_tuples([(f"g{c}", "token")])
        for p in range(processes):
            engine.start("Member", (f"g{p % communities}",))
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
        assert result.completed
        assert result.consensus_rounds == communities
        assert engine.dataspace.count_matching(P["done", ANY]) == processes
        assert elapsed < 60

    def test_thousand_delayed_waiters_all_served(self):
        """Weak fairness at scale: 1000 waiters, 1000 items."""
        a = Var("a")
        waiter = ProcessDefinition(
            "Waiter",
            params=("w",),
            body=[
                delayed(exists(a).match(P["item", a].retract())).then(
                    assert_tuple("served", Var("w"))
                )
            ],
        )
        n = 1000
        engine = Engine(definitions=[waiter], seed=9)
        engine.assert_tuples([("item", i) for i in range(n)])
        for w in range(n):
            engine.start("Waiter", (w,))
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
        assert result.completed
        assert engine.dataspace.count_matching(P["served", ANY]) == n
        assert elapsed < 30
