"""Integration tests: the Section 3.1 summation programs."""

import pytest

from repro.programs import run_sum1, run_sum2, run_sum3
from repro.workloads import random_array


@pytest.mark.parametrize("n", [2, 4, 8, 32])
@pytest.mark.parametrize("runner", [run_sum1, run_sum2, run_sum3])
def test_all_codings_compute_the_sum(runner, n):
    values = random_array(n, seed=n)
    out = runner(values, seed=1)
    assert out.total == sum(values)
    assert out.result.completed


class TestSum1Structure:
    def test_consensus_once_per_phase(self):
        out = run_sum1(random_array(32, seed=1), seed=2)
        # 5 phases for N=32, one barrier each
        assert out.result.consensus_rounds == 5

    def test_merge_count_is_n_minus_1(self):
        out = run_sum1(random_array(16, seed=1), seed=2, detail=True)
        from repro.runtime.events import TxnCommitted

        merges = [
            e for e in out.trace.of_kind(TxnCommitted) if e.label == "merge"
        ]
        assert len(merges) == 15

    def test_process_count_is_n_minus_1(self):
        # N/2 initial + N/4 + ... + 1 spawned = N - 1 total
        out = run_sum1(random_array(16, seed=1), seed=2)
        assert out.trace.counters.processes_created == 15

    def test_negative_values(self):
        values = random_array(8, seed=3, low=-50, high=-1)
        assert run_sum1(values, seed=1).total == sum(values)


class TestSum2Structure:
    def test_no_consensus_needed(self):
        out = run_sum2(random_array(32, seed=1), seed=2)
        assert out.result.consensus_rounds == 0

    def test_one_process_per_merge(self):
        out = run_sum2(random_array(32, seed=1), seed=2)
        assert out.trace.counters.processes_created == 31
        assert out.result.commits == 31

    def test_rounds_logarithmic(self):
        out = run_sum2(random_array(64, seed=1), seed=2)
        assert out.result.rounds <= 16


class TestSum3Structure:
    def test_single_process(self):
        out = run_sum3(random_array(32, seed=1), seed=2)
        assert out.trace.counters.processes_created == 1
        assert out.result.consensus_rounds == 0

    def test_any_length_works(self):
        # Sum3 does not require a power of two
        for n in (3, 5, 7, 100):
            values = random_array(n, seed=n)
            assert run_sum3(values, seed=1).total == sum(values)

    def test_single_value_is_fixpoint(self):
        out = run_sum3([42], seed=1)
        assert out.total == 42
        assert out.result.commits == 0

    def test_parallelism_grows_with_n(self):
        small = run_sum3(random_array(16, seed=1), seed=2)
        large = run_sum3(random_array(256, seed=1), seed=2)
        assert large.result.parallelism > small.result.parallelism


class TestValidation:
    def test_power_of_two_required_for_sum1(self):
        with pytest.raises(ValueError):
            run_sum1([1, 2, 3], seed=1)

    def test_power_of_two_required_for_sum2(self):
        with pytest.raises(ValueError):
            run_sum2([1, 2, 3], seed=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            run_sum3([], seed=1)

    def test_seeds_change_schedule_not_answer(self):
        values = random_array(32, seed=5)
        totals = {run_sum3(values, seed=s).total for s in range(5)}
        assert totals == {sum(values)}
