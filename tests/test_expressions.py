"""Unit tests for the expression mini-language (repro.core.expressions)."""

import pytest

from repro.core.expressions import (
    Bindings,
    Const,
    EvalContext,
    Expr,
    Var,
    as_expr,
    fn,
    lift,
    variables,
)
from repro.errors import RebindError, UnboundVariableError


def ev(expr, **bound):
    return expr.evaluate(EvalContext(Bindings(bound)))


class TestBindings:
    def test_empty(self):
        assert len(Bindings.EMPTY) == 0
        assert "x" not in Bindings.EMPTY

    def test_bind_is_persistent(self):
        base = Bindings({"a": 1})
        child = base.bind("b", 2)
        assert "b" not in base
        assert child.get("b") == 2
        assert child.get("a") == 1

    def test_rebind_rejected(self):
        with pytest.raises(RebindError):
            Bindings({"a": 1}).bind("a", 2)

    def test_get_missing_raises(self):
        with pytest.raises(UnboundVariableError):
            Bindings.EMPTY.get("zzz")

    def test_bind_all_and_equality(self):
        a = Bindings().bind_all({"x": 1, "y": 2})
        b = Bindings({"x": 1, "y": 2})
        assert a == b
        assert a.as_dict() == {"x": 1, "y": 2}


class TestArithmetic:
    def test_operators(self):
        a, b = variables("a b")
        assert ev(a + b, a=2, b=3) == 5
        assert ev(a - b, a=2, b=3) == -1
        assert ev(a * b, a=2, b=3) == 6
        assert ev(a / b, a=6, b=3) == 2
        assert ev(a // b, a=7, b=2) == 3
        assert ev(a % b, a=7, b=2) == 1
        assert ev(a ** b, a=2, b=5) == 32
        assert ev(-a, a=4) == -4

    def test_reflected_operators(self):
        a = Var("a")
        assert ev(10 - a, a=4) == 6
        assert ev(2 ** a, a=3) == 8
        assert ev(1 + a, a=1) == 2

    def test_nested_expression(self):
        k, j = variables("k j")
        expr = k - 2 ** (j - 1)
        assert ev(expr, k=8, j=3) == 4


class TestComparisonsAndLogic:
    def test_comparisons(self):
        a = Var("a")
        assert ev(a > 87, a=90) is True
        assert ev(a > 87, a=80) is False
        assert ev(a <= 87, a=87) is True
        assert ev(a == 87, a=87) is True
        assert ev(a != 87, a=87) is False

    def test_paper_connectives(self):
        a, b = variables("a b")
        conj = (a > 0) & (b > 0)
        disj = (a > 0) | (b > 0)
        neg = ~(a > 0)
        assert ev(conj, a=1, b=1) is True
        assert ev(conj, a=1, b=-1) is False
        assert ev(disj, a=-1, b=1) is True
        assert ev(neg, a=-1) is True

    def test_bool_coercion_is_refused(self):
        a = Var("a")
        with pytest.raises(TypeError):
            bool(a > 1)

    def test_eq_builds_ast_not_bool(self):
        a = Var("a")
        node = a == 1
        assert isinstance(node, Expr)


class TestCallsAndHelpers:
    def test_lift(self):
        double = lift(lambda x: 2 * x, "double")
        assert ev(double(Var("a")), a=21) == 42
        assert "double" in repr(double(Var("a")))

    def test_fn_alias(self):
        assert fn is lift

    def test_call_free_variables(self):
        a, b = variables("a b")
        call = lift(max)(a, b + 1)
        assert call.free_variables() == {"a", "b"}

    def test_as_expr(self):
        assert isinstance(as_expr(5), Const)
        v = Var("v")
        assert as_expr(v) is v

    def test_variables_splits_commas_and_spaces(self):
        names = [v.name for v in variables("a, b c")]
        assert names == ["a", "b", "c"]

    def test_free_variables(self):
        a, b = variables("a b")
        assert (a + b * 2).free_variables() == {"a", "b"}
        assert Const(1).free_variables() == frozenset()

    def test_unbound_evaluation_raises(self):
        with pytest.raises(UnboundVariableError):
            ev(Var("nope") + 1)

    def test_repr_readable(self):
        a, b = variables("a b")
        assert repr(a + b) == "(a + b)"
        assert repr(~(a > b)) == "~(a > b)"
