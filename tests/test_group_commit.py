"""Group-commit rounds: conflict admission, counters, fairness, validation."""

import pytest

from repro.core.actions import assert_tuple
from repro.core.dataspace import Dataspace
from repro.core.expressions import Var, variables
from repro.core.patterns import ANY, P
from repro.core.process import ProcessDefinition
from repro.core.query import exists
from repro.core.transactions import delayed, immediate
from repro.errors import EngineError
from repro.runtime.commit import (
    Footprint,
    WriteRecord,
    conflicts,
    first_conflict,
    validate_serial_equivalence,
)
from repro.runtime.engine import Engine
from repro.runtime.events import ConflictDetected, RoundCommitted, Trace
from repro.runtime.wakeup import AtomWatcher


# ---------------------------------------------------------------------------
# the conflict relation (runtime/commit.py) in isolation
# ---------------------------------------------------------------------------


def fp(pid=1, reads_all=False, watchers=(), retracts=(), writes=()):
    return Footprint(pid, reads_all, watchers, frozenset(retracts), writes)


class TestWriteRecord:
    def test_known_positions_discriminate(self):
        write = WriteRecord(2, {0: "job", 1: 7})
        assert write.touches(AtomWatcher(2, ((0, "job"),)))
        assert not write.touches(AtomWatcher(2, ((0, "other"),)))
        assert not write.touches(AtomWatcher(3, ((0, "job"),)))

    def test_unknown_position_matches_anything(self):
        write = WriteRecord(2, {0: "job"})  # position 1 unknown
        assert write.touches(AtomWatcher(2, ((0, "job"), (1, 99))))

    def test_probeless_watcher_is_arity_granular(self):
        assert WriteRecord(3, {}).touches(AtomWatcher(3))
        assert not WriteRecord(3, {}).touches(AtomWatcher(2))


class TestConflictRelation:
    def test_read_write_conflict(self):
        earlier = fp(pid=1, writes=(WriteRecord(2, {0: "x"}),))
        later = fp(pid=2, watchers=(AtomWatcher(2, ((0, "x"),)),))
        assert conflicts(later, earlier)

    def test_disjoint_keys_commute(self):
        earlier = fp(pid=1, writes=(WriteRecord(2, {0: "x"}),))
        later = fp(pid=2, watchers=(AtomWatcher(2, ((0, "y"),)),))
        assert not conflicts(later, earlier)

    def test_write_write_on_shared_tid(self):
        tid = ("fake-tid",)
        earlier = fp(pid=1, retracts=[tid])
        later = fp(pid=2, retracts=[tid])
        assert conflicts(later, earlier)

    def test_assert_assert_is_not_a_conflict(self):
        # Insertions into a multiset commute: two writers asserting under
        # the same key must both be admitted (no read side, no shared tid).
        earlier = fp(pid=1, writes=(WriteRecord(2, {0: "done"}),))
        later = fp(pid=2, writes=(WriteRecord(2, {0: "done"}),))
        assert not conflicts(later, earlier)

    def test_reads_all_conflicts_with_any_write(self):
        earlier = fp(pid=1, writes=(WriteRecord(5, {}),))
        later = fp(pid=2, reads_all=True)
        assert conflicts(later, earlier)
        assert not conflicts(later, fp(pid=3))  # ... but not with a pure read

    def test_first_conflict_reports_the_winner(self):
        a = fp(pid=1, writes=(WriteRecord(2, {0: "x"}),))
        b = fp(pid=2, writes=(WriteRecord(2, {0: "y"}),))
        later = fp(pid=3, watchers=(AtomWatcher(2, ((0, "y"),)),))
        assert first_conflict([a, b], later) is b
        assert first_conflict([a], fp(pid=4)) is None


# ---------------------------------------------------------------------------
# engine behaviour under commit="group"
# ---------------------------------------------------------------------------


def make_disjoint_engine(n=8, **kwargs):
    a = Var("a")
    worker = ProcessDefinition(
        "W",
        params=("k",),
        body=[
            delayed(exists(a).match(P[Var("k"), a].retract())).then(
                assert_tuple("done", Var("k"), a)
            )
        ],
    )
    engine = Engine(definitions=[worker], seed=1, **kwargs)
    engine.assert_tuples([(k, k * 10) for k in range(n)])
    for k in range(n):
        engine.start("W", (k,))
    return engine


def make_contended_engine(workers=6, **kwargs):
    a = Var("a")
    worker = ProcessDefinition(
        "W",
        body=[
            delayed(exists(a).match(P["tok", a].retract())).then(
                assert_tuple("tok", a + 1)
            )
        ],
    )
    engine = Engine(definitions=[worker], seed=3, **kwargs)
    engine.assert_tuples([("tok", 0)])
    for _ in range(workers):
        engine.start("W")
    return engine


class TestDisjointCommunities:
    def test_whole_community_commits_in_one_batch(self):
        engine = make_disjoint_engine(8, commit="group", validate="serial")
        result = engine.run()
        assert result.completed
        assert result.max_batch == 8
        assert result.conflicts == 0
        multiset = engine.dataspace.multiset()
        assert all(("done", k, k * 10) in multiset for k in range(8))

    def test_group_needs_fewer_rounds_than_serial(self):
        serial = make_disjoint_engine(8, commit="serial").run()
        group = make_disjoint_engine(8, commit="group").run()
        assert group.rounds * 2 <= serial.rounds
        assert group.commits == serial.commits

    def test_serial_mode_is_one_item_per_round(self):
        result = make_disjoint_engine(4, commit="serial").run()
        assert result.rounds == result.steps


class TestContention:
    def test_final_state_matches_live_execution(self):
        group = make_contended_engine(6, commit="group", validate="serial")
        live = make_contended_engine(6, commit="live")
        assert group.run().completed and live.run().completed
        assert group.dataspace.multiset() == live.dataspace.multiset()
        assert group.dataspace.multiset() == {("tok", 6): 1}

    def test_conflicts_are_detected_and_batches_collapse(self):
        engine = make_contended_engine(6, commit="group")
        result = engine.run()
        assert result.conflicts > 0
        assert result.max_batch == 1  # every round admits exactly one taker
        assert 0.0 < result.conflict_rate < 1.0
        assert 0.0 < result.avg_batch <= 1.0

    def test_losers_are_requeued_not_aborted(self):
        # Weak fairness: every one of the 6 contending workers eventually
        # takes the token exactly once (no worker starves or aborts).
        engine = make_contended_engine(6, commit="group", trace=Trace(detail=True))
        engine.run()
        by_pid = engine.trace.commits_by_pid()
        worker_pids = [p.pid for p in engine.society.all_instances()]
        assert all(by_pid.get(pid, 0) == 1 for pid in worker_pids)


class TestGroupEvents:
    def test_round_committed_and_conflict_events(self):
        engine = make_contended_engine(3, commit="group", trace=Trace(detail=True))
        engine.run()
        rounds = list(engine.trace.of_kind(RoundCommitted))
        assert rounds, "group rounds must emit RoundCommitted"
        assert sum(r.admitted for r in rounds) == engine.trace.counters.commits
        clashes = list(engine.trace.of_kind(ConflictDetected))
        assert clashes
        # every loser collided with a pid that actually committed
        committed = set(engine.trace.commits_by_pid())
        assert all(c.winner in committed for c in clashes)

    def test_counters_flow_to_run_result(self):
        engine = make_contended_engine(4, commit="group")
        result = engine.run()
        counters = engine.trace.counters
        assert result.group_rounds == counters.group_rounds > 0
        assert result.batch_commits == counters.batch_commits == result.commits
        assert result.conflicts == counters.conflicts


class TestValidateSerial:
    def test_clean_batches_pass_validation(self):
        engine = make_disjoint_engine(8, commit="group", validate="serial")
        assert engine.run().completed  # no EngineError raised

    def test_validator_rejects_a_non_serializable_batch(self):
        # Hand the validator a "batch" in which both transactions claim the
        # single <tok> instance — exactly what conflict admission prevents.
        a = Var("a")
        taker = ProcessDefinition(
            "T",
            body=[
                delayed(exists(a).match(P["tok", a].retract())).then(
                    assert_tuple("got", a)
                )
            ],
        )
        engine = Engine(definitions=[taker], commit="group")
        engine.assert_tuples([("tok", 0)])
        p1 = engine.start("T")
        p2 = engine.start("T")
        space = Dataspace()
        space.insert_many([("tok", 0)])
        txn = taker.body.body[0].transaction
        window = p1.view.window(space, p1.params)
        result = txn.query.evaluate(window.refresh(), p1.scope(), None)
        pre_rows = [("tok", 0)]
        # claim both committed against the same snapshot match
        with pytest.raises(EngineError, match="serial equivalence"):
            validate_serial_equivalence(
                pre_rows,
                [(p1, txn, result), (p2, txn, result)],
                {("got", 0): 2},  # what a double-commit would produce
                round_count=1,
            )


class TestEngineOptions:
    def test_unknown_commit_mode_rejected(self):
        with pytest.raises(EngineError, match="commit"):
            Engine(commit="optimistic")

    def test_unknown_validate_mode_rejected(self):
        with pytest.raises(EngineError, match="validate"):
            Engine(validate="always")

    def test_env_var_defaults(self, monkeypatch):
        monkeypatch.setenv("SDL_COMMIT", "group")
        monkeypatch.setenv("SDL_VALIDATE", "serial")
        engine = Engine()
        assert engine.commit == "group"
        assert engine.validate == "serial"
        # explicit arguments beat the environment
        assert Engine(commit="live").commit == "live"

    def test_default_mode_is_live(self, monkeypatch):
        monkeypatch.delenv("SDL_COMMIT", raising=False)
        assert Engine().commit == "live"
        assert Engine().validate is None


class TestImmediateAndSelectionsUnderGroup:
    def test_failed_immediate_still_skips(self):
        a = Var("a")
        proc = ProcessDefinition(
            "P",
            body=[
                immediate(exists(a).match(P["missing", a].retract())).then(
                    assert_tuple("found", a)
                ),
                immediate().then(assert_tuple("after",)),
            ],
        )
        engine = Engine(definitions=[proc], commit="group", validate="serial")
        engine.start("P")
        assert engine.run().completed
        multiset = engine.dataspace.multiset()
        assert ("after",) in multiset
        assert not any(v[0] == "found" for v in multiset)

    def test_replication_interoperates_with_group_rounds(self):
        a = Var("a")
        from repro.core.constructs import guarded, replicate

        proc = ProcessDefinition(
            "P",
            body=[
                replicate(
                    guarded(
                        immediate(exists(a).match(P["in", a].retract())).then(
                            assert_tuple("out", a)
                        )
                    )
                )
            ],
        )
        engine = Engine(definitions=[proc], commit="group", validate="serial")
        engine.assert_tuples([("in", i) for i in range(10)])
        engine.start("P")
        assert engine.run().completed
        assert engine.dataspace.count_matching(P["out", ANY]) == 10


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
