"""Unit tests for the query language (repro.core.query)."""

import pytest

from repro.core.expressions import variables
from repro.core.patterns import ANY, P
from repro.core.query import (
    Membership,
    Query,
    QueryAtom,
    TRUE_QUERY,
    exists,
    forall,
    no,
)
from repro.errors import QueryError


class TestConstruction:
    def test_builder_roundtrip(self, abc):
        a, _, _ = abc
        q = exists(a).match(P["year", a].retract()).such_that(a > 87).build()
        assert q.quantifier == "exists"
        assert q.variables == ("a",)
        assert q.atoms[0].retract is True
        assert q.test is not None

    def test_such_that_conjoins(self, abc):
        a, _, _ = abc
        q = exists(a).match(P["x", a]).such_that(a > 0).such_that(a < 9).build()
        # both conditions must apply
        assert q.test is not None

    def test_trivial_query(self):
        assert TRUE_QUERY.is_trivial()
        assert not exists().match(P["x"]).build().is_trivial()

    def test_negated_retraction_rejected(self):
        with pytest.raises(QueryError):
            Query(negated=True, atoms=[QueryAtom(P["x"], retract=True)])

    def test_negated_forall_rejected(self):
        with pytest.raises(QueryError):
            Query(quantifier="forall", negated=True)

    def test_unknown_quantifier_rejected(self):
        with pytest.raises(QueryError):
            Query(quantifier="most")

    def test_atom_requires_pattern(self):
        with pytest.raises(QueryError):
            QueryAtom("not a pattern")  # type: ignore[arg-type]

    def test_retracts_helper(self, abc):
        a, _, _ = abc
        assert exists(a).match(P["x", a].retract()).build().retracts()
        assert not exists(a).match(P["x", a]).build().retracts()


class TestExistsEvaluation:
    def test_success_binds_and_tags(self, year_space, abc):
        a, _, _ = abc
        q = exists(a).match(P["year", a].retract()).such_that(a > 87).build()
        result = q.evaluate(year_space)
        assert result.success
        assert result.bindings["a"] in (88, 90)
        assert len(result.matches[0].retracted) == 1

    def test_failure_when_test_rejects_all(self, year_space, abc):
        a, _, _ = abc
        q = exists(a).match(P["year", a]).such_that(a > 99).build()
        assert not q.evaluate(year_space).success

    def test_membership_test_against_window(self, year_space, abc):
        a, _, _ = abc
        q = (
            exists(a)
            .match(P["year", a])
            .such_that(Membership(P["year", 90]))
            .build()
        )
        assert q.evaluate(year_space).success
        q2 = exists().match(P["year", 85]).such_that(~Membership(P["year", 99])).build()
        assert q2.evaluate(year_space).success

    def test_membership_with_inner_test(self, year_space):
        b = variables("b")[0]
        q = exists().such_that(Membership(P["year", b], test=(b > 89))).build()
        assert q.evaluate(year_space).success
        q2 = exists().such_that(Membership(P["year", b], test=(b > 95))).build()
        assert not q2.evaluate(year_space).success

    def test_params_visible_to_query(self, year_space, abc):
        a, _, _ = abc
        limit = variables("limit")[0]
        q = exists(a).match(P["year", a]).such_that(a > limit).build()
        assert q.evaluate(year_space, {"limit": 89}).bindings["a"] == 90
        assert not q.evaluate(year_space, {"limit": 95}).success

    def test_trivial_query_succeeds_with_params(self, space):
        result = TRUE_QUERY.evaluate(space, {"k": 5})
        assert result.success
        assert result.bindings == {"k": 5}

    def test_propositional_membership(self, year_space):
        assert exists().match(P["year", 87]).build().evaluate(year_space).success
        assert not exists().match(P["year", 99]).build().evaluate(year_space).success


class TestNegatedEvaluation:
    def test_no_succeeds_when_absent(self, year_space):
        assert no(P["day", ANY]).evaluate(year_space).success

    def test_no_fails_when_present(self, year_space):
        assert not no(P["year", ANY]).evaluate(year_space).success

    def test_no_with_test(self, year_space, abc):
        a, _, _ = abc
        q = no(P["year", a], such_that=(a > 95))
        assert q.evaluate(year_space).success
        q2 = no(P["year", a], such_that=(a > 89))
        assert not q2.evaluate(year_space).success

    def test_negated_query_retracts_nothing(self, year_space):
        result = no(P["day", ANY]).evaluate(year_space)
        assert result.matches == []
        assert result.all_retracted() == []


class TestForallEvaluation:
    def test_all_matches_found(self, year_space, abc):
        a, _, _ = abc
        q = forall(a).match(P["year", a].retract()).build()
        result = q.evaluate(year_space)
        assert result.success
        assert len(result.matches) == 4
        assert len(result.all_retracted()) == 4

    def test_vacuous_forall_succeeds(self, space, abc):
        a, _, _ = abc
        q = forall(a).match(P["year", a]).build()
        result = q.evaluate(space)
        assert result.success
        assert result.matches == []

    def test_nonempty_flag_fails_vacuous(self, space, abc):
        a, _, _ = abc
        q = forall(a).match(P["year", a]).nonempty().build()
        assert not q.evaluate(space).success

    def test_forall_with_filter(self, year_space, abc):
        a, _, _ = abc
        q = forall(a).match(P["year", a].retract()).such_that(a > 86).build()
        result = q.evaluate(year_space)
        assert {m.bindings["a"] for m in result.matches} == {87, 88, 90}

    def test_forall_reads_deduplicate_bindings(self, space, abc):
        a, _, _ = abc
        space.insert(("x", 1))
        space.insert(("x", 1))  # same values, distinct instance
        q = forall(a).match(P["x", a]).build()
        result = q.evaluate(space)
        # pure reads dedupe on variable values
        assert len(result.matches) == 1

    def test_forall_retraction_consumes_instances(self, space, abc):
        a, _, _ = abc
        space.insert(("x", 1))
        space.insert(("x", 1))
        q = forall(a).match(P["x", a].retract()).build()
        result = q.evaluate(space)
        # retractions are per-instance: both consumed
        assert len(result.matches) == 2

    def test_forall_excluded_instances(self, space, abc):
        a, _, _ = abc
        keep = space.insert(("x", 1))
        skip = space.insert(("x", 2))
        q = forall(a).match(P["x", a].retract()).build()
        result = q.evaluate(space, excluded={skip.tid})
        assert [m.bindings["a"] for m in result.matches] == [1]


class TestRepr:
    def test_repr_mentions_quantifier_and_atoms(self, abc):
        a, _, _ = abc
        q = exists(a).match(P["year", a].retract()).such_that(a > 87).build()
        text = repr(q)
        assert "∃" in text and "year" in text

    def test_forall_repr(self, abc):
        a, _, _ = abc
        assert "∀" in repr(forall(a).match(P["x", a]).build())
