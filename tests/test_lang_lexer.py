"""Unit tests for the surface-language lexer (repro.lang.lexer)."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "EOF"]


class TestBasics:
    def test_names_and_keywords(self):
        assert kinds("process Sum behavior end") == [
            ("KEYWORD", "process"),
            ("NAME", "Sum"),
            ("KEYWORD", "behavior"),
            ("KEYWORD", "end"),
        ]

    def test_numbers(self):
        assert kinds("12 3.5 0") == [
            ("NUMBER", "12"),
            ("NUMBER", "3.5"),
            ("NUMBER", "0"),
        ]

    def test_strings_with_escapes(self):
        assert kinds(r'"a\"b" "x\n"') == [("STRING", 'a"b'), ("STRING", "x\n")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_comments_skipped(self):
        assert kinds("a # comment\nb") == [("NAME", "a"), ("NAME", "b")]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")


class TestOperators:
    def test_maximal_munch(self):
        assert [v for __, v in kinds("** ^^ -> => != <= >= //")] == [
            "**", "^^", "->", "=>", "!=", "<=", ">=", "//",
        ]

    def test_caret_vs_consensus(self):
        assert [v for __, v in kinds("^ ^^ ^")] == ["^", "^^", "^"]

    def test_star_vs_power(self):
        assert [v for __, v in kinds("* ** *")] == ["*", "**", "*"]

    def test_pattern_tokens(self):
        assert [v for __, v in kinds("<k, a>^")] == ["<", "k", ",", "a", ">", "^"]


class TestPositions:
    def test_line_and_column_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "EOF"
